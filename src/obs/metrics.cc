#include "obs/metrics.hh"

#include <algorithm>

#include "obs/json.hh"
#include "support/logging.hh"

namespace skyway
{
namespace obs
{

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1)
{
    panicIf(!std::is_sorted(bounds_.begin(), bounds_.end()) ||
                std::adjacent_find(bounds_.begin(), bounds_.end()) !=
                    bounds_.end(),
            "Histogram: bucket bounds must be strictly increasing");
}

void
Histogram::record(std::uint64_t v)
{
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i])
        ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v,
                                       std::memory_order_relaxed))
        ;
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
}

std::vector<std::uint64_t>
exponentialBounds(std::uint64_t first, double factor, std::size_t count)
{
    panicIf(first == 0 || factor <= 1.0,
            "exponentialBounds: need first > 0 and factor > 1");
    std::vector<std::uint64_t> bounds;
    bounds.reserve(count);
    double v = static_cast<double>(first);
    for (std::size_t i = 0; i < count; ++i) {
        auto b = static_cast<std::uint64_t>(v);
        if (!bounds.empty() && b <= bounds.back())
            b = bounds.back() + 1;
        bounds.push_back(b);
        v *= factor;
    }
    return bounds;
}

MetricsSnapshot
MetricsSnapshot::deltaSince(const MetricsSnapshot &base) const
{
    MetricsSnapshot out;
    out.scalars.reserve(scalars.size());
    std::size_t bi = 0;
    for (const auto &[name, value] : scalars) {
        while (bi < base.scalars.size() &&
               base.scalars[bi].first < name)
            ++bi;
        std::int64_t prev = (bi < base.scalars.size() &&
                             base.scalars[bi].first == name)
                                ? base.scalars[bi].second
                                : 0;
        out.scalars.emplace_back(name, value - prev);
    }
    return out;
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry reg;
    return reg;
}

Counter &
MetricsRegistry::counter(std::string_view name)
{
    MutexLock lock(mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end())
        it = entries_.emplace(std::string(name), Entry{}).first;
    Entry &e = it->second;
    panicIf(e.gauge != nullptr || e.histogram != nullptr,
            "MetricsRegistry: " + it->first +
                " already registered with another kind");
    if (!e.counter)
        e.counter = std::make_unique<Counter>();
    return *e.counter;
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    MutexLock lock(mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end())
        it = entries_.emplace(std::string(name), Entry{}).first;
    Entry &e = it->second;
    panicIf(e.counter != nullptr || e.histogram != nullptr,
            "MetricsRegistry: " + it->first +
                " already registered with another kind");
    if (!e.gauge)
        e.gauge = std::make_unique<Gauge>();
    return *e.gauge;
}

Histogram &
MetricsRegistry::histogram(std::string_view name,
                           const std::vector<std::uint64_t> &bounds)
{
    MutexLock lock(mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end())
        it = entries_.emplace(std::string(name), Entry{}).first;
    Entry &e = it->second;
    panicIf(e.counter != nullptr || e.gauge != nullptr,
            "MetricsRegistry: " + it->first +
                " already registered with another kind");
    if (!e.histogram)
        e.histogram = std::make_unique<Histogram>(bounds);
    return *e.histogram;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MutexLock lock(mutex_);
    MetricsSnapshot snap;
    snap.scalars.reserve(entries_.size());
    for (const auto &[name, e] : entries_) {
        if (e.counter)
            snap.scalars.emplace_back(
                name, static_cast<std::int64_t>(e.counter->value()));
        else if (e.gauge)
            snap.scalars.emplace_back(name, e.gauge->value());
    }
    return snap;
}

std::string
MetricsRegistry::toJson() const
{
    MutexLock lock(mutex_);
    JsonWriter w;
    w.beginObject();
    w.key("counters");
    w.beginObject();
    for (const auto &[name, e] : entries_) {
        if (e.counter)
            w.key(name).value(e.counter->value());
    }
    w.endObject();
    w.key("gauges");
    w.beginObject();
    for (const auto &[name, e] : entries_) {
        if (e.gauge)
            w.key(name).value(e.gauge->value());
    }
    w.endObject();
    w.key("histograms");
    w.beginObject();
    for (const auto &[name, e] : entries_) {
        if (!e.histogram)
            continue;
        const Histogram &h = *e.histogram;
        w.key(name);
        w.beginObject();
        w.key("count").value(h.count());
        w.key("sum").value(h.sum());
        w.key("max").value(h.max());
        w.key("buckets");
        w.beginArray();
        for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
            w.beginObject();
            w.key("le");
            if (i < h.bounds().size())
                w.value(h.bounds()[i]);
            else
                w.value("+Inf");
            w.key("count").value(h.bucketCount(i));
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endObject();
    w.endObject();
    return std::move(w).str();
}

void
MetricsRegistry::resetValues()
{
    MutexLock lock(mutex_);
    for (auto &[name, e] : entries_) {
        (void)name;
        if (e.counter)
            e.counter->reset();
        if (e.gauge)
            e.gauge->reset();
        if (e.histogram)
            e.histogram->reset();
    }
}

} // namespace obs
} // namespace skyway
