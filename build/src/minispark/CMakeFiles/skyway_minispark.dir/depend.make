# Empty dependencies file for skyway_minispark.
# This may be replaced when dependencies are built.
