/**
 * @file
 * Class metadata ("klass" in HotSpot terminology). A Klass records a
 * class's name, super class, field layout, reference map, and — the
 * Skyway extension — the globally assigned type ID (tID).
 */

#ifndef SKYWAY_KLASS_KLASS_HH
#define SKYWAY_KLASS_KLASS_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "klass/field.hh"
#include "klass/objectformat.hh"
#include "support/types.hh"

namespace skyway
{

class KlassTable;

/**
 * Runtime metadata for one loaded class. Instances are owned by one
 * node's KlassTable; like real JVM klass meta objects, the *same class*
 * is represented by *different* Klass instances (at different addresses)
 * on different nodes — which is exactly why types cannot be shipped as
 * raw klass pointers and Skyway introduces global type IDs.
 */
class Klass
{
  public:
    /** Sentinel tID for classes not yet registered with the driver. */
    static constexpr std::int32_t unregisteredTid = -1;

    const std::string &name() const { return name_; }
    const Klass *super() const { return super_; }
    bool isArray() const { return isArray_; }

    /** Element type; only meaningful for array klasses. */
    FieldType elemType() const { return elemType_; }

    /** Element class name; only meaningful for Ref-element arrays. */
    const std::string &elemClassName() const { return elemClassName_; }

    /** Storage size of one array element in bytes. */
    std::size_t elemSize() const { return fieldSize(elemType_); }

    /**
     * Total object size in bytes (header + payload, word-aligned) for a
     * non-array instance.
     */
    std::size_t instanceBytes() const { return instanceBytes_; }

    /** Total size in bytes of an array of @p length elements. */
    std::size_t
    arrayBytes(std::size_t length) const
    {
        return wordAlign(format_.arrayHeaderBytes() + length * elemSize());
    }

    /** The object format this klass was laid out against. */
    const ObjectFormat &format() const { return format_; }

    /**
     * All instance fields, super-class fields first, in layout order.
     * Empty for array klasses.
     */
    const std::vector<FieldDesc> &fields() const { return allFields_; }

    /** Fields declared by this class only (no super fields). */
    const std::vector<FieldDesc> &ownFields() const { return ownFields_; }

    /**
     * Byte offsets of all reference-typed fields (the "oop map"), used
     * by the GC and by Skyway's graph traversal. For Ref-element arrays
     * the per-element offsets are computed from the length instead.
     */
    const std::vector<std::uint32_t> &refOffsets() const
    {
        return refOffsets_;
    }

    /** Total bytes of primitive (non-reference) instance fields. */
    std::size_t primitiveDataBytes() const { return primDataBytes_; }

    /**
     * Reflective field lookup by name: a hash-map probe on a string key,
     * the operation whose per-object repetition makes the Java
     * serializer slow. Returns nullptr when no such field exists.
     */
    const FieldDesc *findField(const std::string &name) const;

    /** Like findField() but panics when the field is missing. */
    const FieldDesc &requireField(const std::string &name) const;

    /** Globally assigned Skyway type ID, or unregisteredTid. */
    std::int32_t
    tid() const
    {
        return tid_.load(std::memory_order_relaxed);
    }

    /**
     * Install the driver-assigned type ID (paper Algorithm 1 line 35).
     * The word is atomic because concurrent sender threads race the
     * first publication of a class's id (SkywayContext::tidFor); every
     * writer stores the same driver-assigned value, so relaxed order
     * suffices.
     */
    void
    setTid(std::int32_t tid)
    {
        tid_.store(tid, std::memory_order_relaxed);
    }

    /** Number of super classes up to the root (for descriptor tests). */
    int superChainLength() const;

  private:
    friend class KlassTable;

    Klass() = default;

    std::string name_;
    const Klass *super_ = nullptr;
    bool isArray_ = false;
    FieldType elemType_ = FieldType::Byte;
    std::string elemClassName_;
    ObjectFormat format_;
    std::size_t instanceBytes_ = 0;
    std::vector<FieldDesc> ownFields_;
    std::vector<FieldDesc> allFields_;
    std::vector<std::uint32_t> refOffsets_;
    std::size_t primDataBytes_ = 0;
    std::unordered_map<std::string, std::uint32_t> fieldIndex_;
    std::atomic<std::int32_t> tid_{unregisteredTid};
};

/**
 * A class definition as it would exist in the application's jar: name,
 * super-class name, declared fields. ClassDefs live in a catalog shared
 * by all nodes (the same jar is deployed cluster-wide); each node's
 * KlassTable *loads* from the catalog into its own Klass instances.
 */
struct ClassDef
{
    std::string name;
    std::string superName; // empty for root classes
    std::vector<FieldDef> fields;
};

/**
 * The shared "jar": a catalog of class definitions that every node's
 * class loader resolves against.
 */
class ClassCatalog
{
  public:
    /** Register a definition; later definitions may not redefine. */
    void define(ClassDef def);

    /** Find a definition; nullptr when unknown. */
    const ClassDef *find(const std::string &name) const;

    std::size_t size() const { return defs_.size(); }

  private:
    std::unordered_map<std::string, ClassDef> defs_;
};

/**
 * Install the bootstrap class definitions every runtime needs
 * (java.lang.String and the primitive box classes).
 */
void defineBootstrapClasses(ClassCatalog &catalog);

/**
 * Per-node class loader and klass registry. Loading a class lays out its
 * fields against the node's ObjectFormat and assigns it a fresh local
 * Klass meta object.
 */
class KlassTable
{
  public:
    /**
     * Hook invoked after a class is loaded, used by the Skyway type
     * registry to obtain the class's global ID (Algorithm 1, worker
     * part 2). May be empty.
     */
    using LoadHook = void (*)(void *ctx, Klass &k);

    explicit KlassTable(const ClassCatalog &catalog,
                        ObjectFormat format = ObjectFormat{});

    KlassTable(const KlassTable &) = delete;
    KlassTable &operator=(const KlassTable &) = delete;

    const ObjectFormat &format() const { return format_; }

    /**
     * Return the klass for @p name, loading (and laying out) it on
     * first use. Array classes use JVM descriptor syntax: "[I" is
     * int[], "[Ljava.lang.String;" is String[].
     */
    Klass *load(const std::string &name);

    /** Return the klass only if already loaded; nullptr otherwise. */
    Klass *findLoaded(const std::string &name);

    /** Convenience: the klass for an array of primitive @p elem. */
    Klass *arrayOfPrimitive(FieldType elem);

    /** Convenience: the klass for an array of @p elemClass references. */
    Klass *arrayOfRefs(const std::string &elemClass);

    /** All currently loaded klasses, in load order. */
    const std::vector<Klass *> &loadedKlasses() const { return loadOrder_; }

    /** Install the post-load hook (see LoadHook). */
    void
    setLoadHook(LoadHook hook, void *ctx)
    {
        loadHook_ = hook;
        loadHookCtx_ = ctx;
    }

  private:
    Klass *loadInstanceKlass(const ClassDef &def);
    Klass *loadArrayKlass(const std::string &descriptor);
    void layout(Klass &k, const ClassDef &def);

    const ClassCatalog &catalog_;
    ObjectFormat format_;
    std::unordered_map<std::string, std::unique_ptr<Klass>> loaded_;
    std::vector<Klass *> loadOrder_;
    LoadHook loadHook_ = nullptr;
    void *loadHookCtx_ = nullptr;
};

/** Array-descriptor helpers. */
std::string arrayDescriptorOfPrimitive(FieldType elem);
std::string arrayDescriptorOfRefs(const std::string &elemClass);

} // namespace skyway

#endif // SKYWAY_KLASS_KLASS_HH
