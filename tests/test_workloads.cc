/**
 * @file
 * Tests for the workload generators (media, graphs, text, TPC-H) and
 * the JSBS codec family: determinism, structural invariants, and
 * byte-level round trips for every wire format.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "workloads/graphgen.hh"
#include "workloads/jsbs_family.hh"
#include "workloads/text.hh"
#include "workloads/tpch.hh"

namespace skyway
{
namespace
{

class MediaTest : public ::testing::Test
{
  protected:
    MediaTest() : net_(2)
    {
        catalog_ = makeStandardCatalog();
        defineMediaClasses(catalog_);
        a_ = std::make_unique<Jvm>(catalog_, net_, 0, 0);
        b_ = std::make_unique<Jvm>(catalog_, net_, 1, 0);
    }

    ClassCatalog catalog_;
    ClusterNetwork net_;
    std::unique_ptr<Jvm> a_, b_;
};

TEST_F(MediaTest, GeneratedContentIsWellFormed)
{
    Rng rng(1);
    LocalRoots roots(a_->heap());
    std::size_t slot = makeMediaContent(*a_, roots, rng);
    EXPECT_TRUE(mediaContentWellFormed(*a_, roots.get(slot)));
}

TEST_F(MediaTest, GenerationIsDeterministic)
{
    Rng r1(7), r2(7);
    LocalRoots roots(a_->heap());
    std::size_t s1 = makeMediaContent(*a_, roots, r1);
    std::size_t s2 = makeMediaContent(*a_, roots, r2);
    EXPECT_TRUE(graphsEqual(a_->heap(), roots.get(s1), a_->heap(),
                            roots.get(s2)));
}

TEST_F(MediaTest, ExtractReflectiveMatchesCompiled)
{
    Rng rng(3);
    LocalRoots roots(a_->heap());
    std::size_t slot = makeMediaContent(*a_, roots, rng);
    SdEnv env{a_->heap(), a_->klasses()};
    MediaSchema schema(a_->klasses());
    MediaValues fast = extractMedia(env, schema, roots.get(slot));
    MediaValues slow = extractMediaReflective(env, roots.get(slot));
    EXPECT_EQ(fast, slow);
}

TEST_F(MediaTest, MaterializeInvertsExtract)
{
    Rng rng(5);
    LocalRoots roots(a_->heap());
    std::size_t slot = makeMediaContent(*a_, roots, rng);
    SdEnv env{a_->heap(), a_->klasses()};
    MediaSchema schema(a_->klasses());
    MediaValues v = extractMedia(env, schema, roots.get(slot));
    Address rebuilt = materializeMedia(env, schema, v);
    MediaValues v2 = extractMedia(env, schema, rebuilt);
    EXPECT_EQ(v, v2);
}

TEST_F(MediaTest, AllCodecsRoundTripAcrossJvms)
{
    Rng rng(11);
    LocalRoots roots(a_->heap());
    std::size_t slot = makeMediaContent(*a_, roots, rng);
    MediaSchema schemaA(a_->klasses());
    SdEnv envA{a_->heap(), a_->klasses()};
    MediaValues expect = extractMedia(envA, schemaA, roots.get(slot));

    for (const JsbsCodec &codec : jsbsCodecs()) {
        JsbsSerializer ser(envA, codec);
        SdEnv envB{b_->heap(), b_->klasses()};
        JsbsSerializer des(envB, codec);
        VectorSink sink;
        ser.writeObject(roots.get(slot), sink);
        EXPECT_GT(sink.bytesWritten(), 0u) << codec.name;
        ByteSource src(sink.bytes());
        Address out = des.readObject(src);
        ASSERT_NE(out, nullAddr) << codec.name;
        EXPECT_TRUE(mediaContentWellFormed(*b_, out)) << codec.name;
        MediaSchema schemaB(b_->klasses());
        MediaValues got = extractMedia(envB, schemaB, out);
        EXPECT_EQ(expect, got) << codec.name;
    }
}

TEST_F(MediaTest, SelfDescribingFormatsAreBigger)
{
    Rng rng(13);
    LocalRoots roots(a_->heap());
    std::size_t slot = makeMediaContent(*a_, roots, rng);
    SdEnv env{a_->heap(), a_->klasses()};
    auto sizeOf = [&](const char *name) {
        JsbsSerializer ser(env, jsbsCodec(name));
        VectorSink sink;
        ser.writeObject(roots.get(slot), sink);
        return sink.bytesWritten();
    };
    // CBOR carries field-name strings; colfer carries 1-byte indexes.
    EXPECT_GT(sizeOf("cbor/jackson/manual"), sizeOf("colfer"));
    // smile's key back-references beat cbor on repeated image keys.
    EXPECT_LT(sizeOf("smile/jackson/manual"),
              sizeOf("cbor/jackson/manual"));
    // capnproto's fixed layout pads more than varint formats.
    EXPECT_GT(sizeOf("capnproto"), sizeOf("protostuff"));
}

TEST_F(MediaTest, UnknownCodecIsFatal)
{
    EXPECT_DEATH(jsbsCodec("no-such-codec"), "unknown codec");
}

TEST(GraphGen, Table1SpecsHaveOrderedSizes)
{
    auto specs = table1Graphs();
    ASSERT_EQ(specs.size(), 4u);
    EXPECT_EQ(specs[0].name, "LJ");
    EXPECT_EQ(specs[3].name, "TW");
    for (std::size_t i = 1; i < specs.size(); ++i)
        EXPECT_GT(specs[i].edges, specs[i - 1].edges)
            << "Table 1 ordering LJ < OR < UK < TW must hold";
}

TEST(GraphGen, GeneratesRequestedEdges)
{
    GraphSpec spec{"t", 1000, 5000, 2.0, 42, ""};
    EdgeList g = generateGraph(spec);
    EXPECT_EQ(g.numVertices, 1000u);
    EXPECT_EQ(g.edges.size(), 5000u);
    for (auto [u, v] : g.edges) {
        EXPECT_LT(u, 1000u);
        EXPECT_LT(v, 1000u);
        EXPECT_NE(u, v);
    }
}

TEST(GraphGen, Deterministic)
{
    GraphSpec spec{"t", 500, 2000, 2.0, 7, ""};
    EdgeList a = generateGraph(spec);
    EdgeList b = generateGraph(spec);
    EXPECT_EQ(a.edges, b.edges);
}

TEST(GraphGen, DegreeDistributionIsSkewed)
{
    GraphSpec spec{"t", 10000, 50000, 2.0, 9, ""};
    EdgeList g = generateGraph(spec);
    auto adj = buildAdjacency(g);
    std::size_t max_deg = 0;
    std::size_t isolated = 0;
    for (const auto &list : adj) {
        max_deg = std::max(max_deg, list.size());
        if (list.empty())
            ++isolated;
    }
    // Hubs must exist, far above the mean degree (~10).
    EXPECT_GT(max_deg, 100u);
    // And most of the tail is sparse.
    EXPECT_GT(isolated + 1, 0u);
}

TEST(GraphGen, AdjacencyIsSortedUnique)
{
    GraphSpec spec{"t", 200, 2000, 1.8, 5, ""};
    auto adj = buildAdjacency(generateGraph(spec));
    for (const auto &list : adj) {
        EXPECT_TRUE(std::is_sorted(list.begin(), list.end()));
        EXPECT_EQ(std::adjacent_find(list.begin(), list.end()),
                  list.end());
    }
}

TEST(TextGen, ShapeAndDeterminism)
{
    TextSpec spec;
    spec.lines = 100;
    spec.wordsPerLine = 7;
    auto lines = generateText(spec);
    ASSERT_EQ(lines.size(), 100u);
    for (const auto &line : lines)
        EXPECT_EQ(tokenize(line).size(), 7u);
    EXPECT_EQ(generateText(spec), lines);
}

TEST(TextGen, ZipfSkew)
{
    TextSpec spec;
    spec.lines = 2000;
    auto lines = generateText(spec);
    std::unordered_map<std::string, int> freq;
    for (const auto &line : lines)
        for (auto &w : tokenize(line))
            ++freq[w];
    // The most frequent word must dominate the median word.
    int maxf = 0;
    for (auto &[w, f] : freq)
        maxf = std::max(maxf, f);
    EXPECT_GT(maxf, 50);
}

TEST(Tpch, RowCountsScale)
{
    TpchSpec spec;
    spec.scale = 0.1;
    TpchData db = generateTpch(spec);
    EXPECT_EQ(db.region.size(), 5u);
    EXPECT_EQ(db.nation.size(), 25u);
    EXPECT_EQ(db.customer.size(), spec.customers());
    EXPECT_EQ(db.orders.size(), spec.orders());
    EXPECT_GE(db.lineitem.size(), db.orders.size());
    EXPECT_LE(db.lineitem.size(), db.orders.size() * 7);
}

TEST(Tpch, ReferentialIntegrity)
{
    TpchSpec spec;
    spec.scale = 0.05;
    TpchData db = generateTpch(spec);
    for (const auto &c : db.customer)
        EXPECT_LT(static_cast<std::size_t>(c.nationKey),
                  db.nation.size());
    for (const auto &o : db.orders) {
        EXPECT_GE(o.custKey, 1);
        EXPECT_LE(static_cast<std::size_t>(o.custKey),
                  db.customer.size());
    }
    for (const auto &li : db.lineitem) {
        EXPECT_GE(li.orderKey, 1);
        EXPECT_LE(static_cast<std::size_t>(li.orderKey),
                  db.orders.size());
        EXPECT_LE(li.shipDate, tpchMaxDate);
        EXPECT_GT(li.receiptDate, li.shipDate);
        EXPECT_GE(li.discount, 0.0);
        EXPECT_LE(li.discount, 0.10);
    }
}

TEST(Tpch, Deterministic)
{
    TpchSpec spec;
    spec.scale = 0.02;
    TpchData a = generateTpch(spec);
    TpchData b = generateTpch(spec);
    ASSERT_EQ(a.lineitem.size(), b.lineitem.size());
    for (std::size_t i = 0; i < a.lineitem.size(); i += 97) {
        EXPECT_EQ(a.lineitem[i].extendedPrice,
                  b.lineitem[i].extendedPrice);
        EXPECT_EQ(a.lineitem[i].shipMode, b.lineitem[i].shipMode);
    }
}

} // namespace
} // namespace skyway
