# Empty compiler generated dependencies file for skyway_gc.
# This may be replaced when dependencies are built.
