# Empty compiler generated dependencies file for bench_fig7_jsbs.
# This may be replaced when dependencies are built.
