#include "sd/javaserializer.hh"

#include "obs/metrics.hh"
#include "obs/span.hh"

namespace skyway
{

namespace
{

/** Registry-backed baseline-serializer counters. */
struct JavaSdMetrics
{
    obs::Counter &objectsWritten;
    obs::Counter &bytesWritten;
    obs::Counter &objectsRead;
    obs::Counter &descriptorsWritten;
    obs::Counter &reflectiveAccesses;

    static JavaSdMetrics &
    get()
    {
        auto &r = obs::MetricsRegistry::global();
        static JavaSdMetrics m{
            r.counter("sd.java.objects_written"),
            r.counter("sd.java.bytes_written"),
            r.counter("sd.java.objects_read"),
            r.counter("sd.java.descriptors_written"),
            r.counter("sd.java.reflective_accesses"),
        };
        return m;
    }
};

} // namespace

JavaSerializer::JavaSerializer(SdEnv env, int reset_interval)
    : env_(env),
      resetInterval_(reset_interval),
      handles_(std::make_unique<LocalRoots>(env.heap))
{
}

void
JavaSerializer::clearWriteState()
{
    handleOf_.clear();
    pending_.clear();
    descIdOf_.clear();
}

void
JavaSerializer::clearReadState()
{
    handles_->clear();
    descTable_.clear();
    fixups_.clear();
}

void
JavaSerializer::reset()
{
    pendingReset_ = true;
}

void
JavaSerializer::writeRefSlot(Address target, ByteSink &out)
{
    if (target == nullAddr) {
        out.writeU8(javatc::null);
        return;
    }
    auto it = handleOf_.find(target);
    std::uint32_t handle;
    if (it != handleOf_.end()) {
        handle = it->second;
    } else {
        handle = static_cast<std::uint32_t>(handleOf_.size());
        handleOf_.emplace(target, handle);
        pending_.push_back(target);
    }
    out.writeU8(javatc::reference);
    out.writeVarU32(handle);
}

void
JavaSerializer::writeClassDesc(Klass *k, ByteSink &out)
{
    if (!k) {
        out.writeU8(javatc::null);
        return;
    }
    auto it = descIdOf_.find(k);
    if (it != descIdOf_.end()) {
        out.writeU8(javatc::classDescRef);
        out.writeVarU32(it->second);
        return;
    }
    std::uint32_t id = static_cast<std::uint32_t>(descIdOf_.size());
    descIdOf_.emplace(k, id);
    ++descWritten_;

    // The full descriptor: class name, the declared field table (name
    // and type character per field), then — recursively — the
    // super-class descriptor, exactly the structure that makes a
    // 1-byte-payload object cost tens of wire bytes in the JDK.
    out.writeU8(javatc::classDesc);
    out.writeString(k->name());
    out.writeVarU32(static_cast<std::uint32_t>(k->ownFields().size()));
    for (const FieldDesc &f : k->ownFields()) {
        out.writeString(f.name);
        out.writeU8(static_cast<std::uint8_t>(fieldDescriptorChar(
            f.type)));
    }
    writeClassDesc(const_cast<Klass *>(k->super()), out);
}

void
JavaSerializer::writeRecord(Address obj, ByteSink &out)
{
    ManagedHeap &heap = env_.heap;
    Klass *k = heap.klassOf(obj);

    if (k->name() == "java.lang.String") {
        // The JDK special-cases strings as UTF records.
        out.writeU8(javatc::string);
        ObjectBuilder builder(heap, env_.klasses);
        out.writeString(builder.stringValue(obj));
        reflectAccesses_ += 2; // value + hash lookups
        out.writeI32(reflect::getField<std::int32_t>(heap, obj, "hash"));
        return;
    }

    if (k->isArray()) {
        out.writeU8(javatc::array);
        writeClassDesc(k, out);
        auto n = static_cast<std::size_t>(heap.arrayLength(obj));
        out.writeVarU64(n);
        if (k->elemType() == FieldType::Ref) {
            for (std::size_t i = 0; i < n; ++i)
                writeRefSlot(array::getRef(heap, obj, i), out);
        } else {
            // One call per element, as ObjectOutputStream does for
            // non-byte arrays.
            std::size_t sz = k->elemSize();
            for (std::size_t i = 0; i < n; ++i) {
                const void *p = reinterpret_cast<const void *>(
                    obj + heap.arrayElemOffset(k, i));
                out.write(p, sz);
            }
        }
        return;
    }

    out.writeU8(javatc::object);
    writeClassDesc(k, out);
    for (const FieldDesc &f : k->fields()) {
        ++reflectAccesses_;
        switch (f.type) {
          case FieldType::Boolean:
          case FieldType::Byte:
            out.writeU8(reflect::getField<std::uint8_t>(env_.heap, obj,
                                                        f.name));
            break;
          case FieldType::Char:
          case FieldType::Short:
            out.writeU16(reflect::getField<std::uint16_t>(env_.heap,
                                                          obj, f.name));
            break;
          case FieldType::Int:
          case FieldType::Float:
            out.writeU32(reflect::getField<std::uint32_t>(env_.heap,
                                                          obj, f.name));
            break;
          case FieldType::Long:
          case FieldType::Double:
            out.writeU64(reflect::getField<std::uint64_t>(env_.heap,
                                                          obj, f.name));
            break;
          case FieldType::Ref:
            writeRefSlot(reflect::getRefField(env_.heap, obj, f.name),
                         out);
            break;
        }
    }
}

void
JavaSerializer::writeObject(Address root, ByteSink &out)
{
    SKYWAY_SPAN("sd.java.write");
    std::size_t bytes_before = out.bytesWritten();
    std::uint64_t desc_before = descWritten_;
    std::uint64_t reflect_before = reflectAccesses_;

    if (pendingReset_ ||
        (resetInterval_ > 0 && writesSinceReset_ >= resetInterval_)) {
        out.writeU8(javatc::reset);
        clearWriteState();
        writesSinceReset_ = 0;
        pendingReset_ = false;
    }
    ++writesSinceReset_;

    writeRefSlot(root, out);
    while (!pending_.empty()) {
        Address obj = pending_.front();
        pending_.pop_front();
        writeRecord(obj, out);
    }
    out.writeU8(javatc::endGraph);

    JavaSdMetrics &m = JavaSdMetrics::get();
    m.objectsWritten.inc();
    m.bytesWritten.add(out.bytesWritten() - bytes_before);
    m.descriptorsWritten.add(descWritten_ - desc_before);
    m.reflectiveAccesses.add(reflectAccesses_ - reflect_before);
}

Klass *
JavaSerializer::readClassDesc(ByteSource &in)
{
    std::uint8_t tc = in.readU8();
    if (tc == javatc::null)
        return nullptr;
    if (tc == javatc::classDescRef)
        return descTable_[in.readVarU32()];
    panicIf(tc != javatc::classDesc, "JavaSerializer: bad classdesc tag");

    std::string name = in.readString();
    // Reserve the descriptor slot before recursing on the super.
    std::size_t slot = descTable_.size();
    descTable_.push_back(nullptr);
    std::uint32_t nfields = in.readVarU32();
    for (std::uint32_t i = 0; i < nfields; ++i) {
        in.readString(); // field name
        in.readU8();     // type char
    }
    readClassDesc(in); // super descriptor (resolution is by name)
    Klass *k = env_.klasses.load(name);
    descTable_[slot] = k;
    return k;
}

void
JavaSerializer::readRefSlotInto(ByteSource &in, std::size_t holder_handle,
                                std::size_t off)
{
    std::uint8_t tc = in.readU8();
    if (tc == javatc::null) {
        env_.heap.store<Address>(handles_->get(holder_handle), off,
                                 nullAddr);
        return;
    }
    panicIf(tc != javatc::reference, "JavaSerializer: bad ref tag");
    std::size_t target = in.readVarU32();
    if (target < handles_->size()) {
        env_.heap.storeRef(handles_->get(holder_handle), off,
                           handles_->get(target));
    } else {
        fixups_.push_back(Fixup{holder_handle, off, target});
    }
}

Address
JavaSerializer::readRecord(std::uint8_t tc, ByteSource &in)
{
    ManagedHeap &heap = env_.heap;

    if (tc == javatc::string) {
        ObjectBuilder builder(heap, env_.klasses);
        std::string value = in.readString();
        std::int32_t hash = in.readI32();
        Address s = builder.makeString(value);
        std::size_t handle = handles_->push(s);
        reflect::setField<std::int32_t>(heap, handles_->get(handle),
                                        "hash", hash);
        return handles_->get(handle);
    }

    if (tc == javatc::array) {
        Klass *k = readClassDesc(in);
        std::size_t n = in.readVarU64();
        Address arr = heap.allocateArray(k, n);
        std::size_t handle = handles_->push(arr);
        if (k->elemType() == FieldType::Ref) {
            for (std::size_t i = 0; i < n; ++i)
                readRefSlotInto(in, handle,
                                heap.arrayElemOffset(k, i));
        } else {
            std::size_t sz = k->elemSize();
            for (std::size_t i = 0; i < n; ++i) {
                Address a = handles_->get(handle);
                in.read(reinterpret_cast<void *>(
                            a + heap.arrayElemOffset(k, i)),
                        sz);
            }
        }
        return handles_->get(handle);
    }

    panicIf(tc != javatc::object, "JavaSerializer: bad record tag");
    Klass *k = readClassDesc(in);
    Address obj = heap.allocateInstance(k);
    std::size_t handle = handles_->push(obj);
    for (const FieldDesc &f : k->fields()) {
        ++reflectAccesses_;
        Address cur = handles_->get(handle);
        // Resolve the field reflectively (string lookup), as
        // ObjectInputStream's field setters do.
        const FieldDesc &rf = heap.klassOf(cur)->requireField(f.name);
        switch (rf.type) {
          case FieldType::Boolean:
          case FieldType::Byte:
            heap.store<std::uint8_t>(cur, rf.offset, in.readU8());
            break;
          case FieldType::Char:
          case FieldType::Short:
            heap.store<std::uint16_t>(cur, rf.offset, in.readU16());
            break;
          case FieldType::Int:
          case FieldType::Float:
            heap.store<std::uint32_t>(cur, rf.offset, in.readU32());
            break;
          case FieldType::Long:
          case FieldType::Double:
            heap.store<std::uint64_t>(cur, rf.offset, in.readU64());
            break;
          case FieldType::Ref:
            readRefSlotInto(in, handle, rf.offset);
            break;
        }
    }
    return handles_->get(handle);
}

Address
JavaSerializer::readObject(ByteSource &in)
{
    SKYWAY_SPAN("sd.java.read");
    std::uint64_t reflect_before = reflectAccesses_;
    Address result = readObjectImpl(in);
    JavaSdMetrics &m = JavaSdMetrics::get();
    m.objectsRead.inc();
    m.reflectiveAccesses.add(reflectAccesses_ - reflect_before);
    return result;
}

Address
JavaSerializer::readObjectImpl(ByteSource &in)
{
    panicIf(in.atEnd(), "JavaSerializer: readObject past end of stream");
    std::uint8_t tc = in.readU8();
    if (tc == javatc::reset) {
        clearReadState();
        tc = in.readU8();
    }
    if (tc == javatc::null) {
        std::uint8_t end = in.readU8();
        panicIf(end != javatc::endGraph,
                "JavaSerializer: malformed null graph");
        return nullAddr;
    }
    panicIf(tc != javatc::reference, "JavaSerializer: bad root tag");
    std::size_t rootHandle = in.readVarU32();

    // Read records until the end-of-graph marker; record i creates the
    // object for handle (base + i), matching the writer's FIFO order.
    while (true) {
        std::uint8_t tag = in.readU8();
        if (tag == javatc::endGraph)
            break;
        panicIf(tag != javatc::string && tag != javatc::array &&
                    tag != javatc::object,
                "JavaSerializer: unexpected tag in graph body");
        readRecord(tag, in);
    }

    // All records for this graph are present: apply forward fixups.
    for (const Fixup &fx : fixups_) {
        env_.heap.storeRef(handles_->get(fx.holder), fx.offset,
                           handles_->get(fx.target));
    }
    fixups_.clear();

    return handles_->get(rootHandle);
}

} // namespace skyway
