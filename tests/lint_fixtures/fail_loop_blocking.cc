// lint-invariants fixture (MUST FAIL rule 1): the event loop reaches
// an unbounded-blocking socket write through a helper. Not compiled —
// parsed by tools/lint_invariants.py --selftest.

void
sendFully(int fd, const unsigned char *buf, unsigned long len)
{
    while (len) {
        long n = ::send(fd, buf, len, 0);
        buf += n;
        len -= static_cast<unsigned long>(n);
    }
}

void
pumpWrites(int fd)
{
    unsigned char frame[16] = {};
    sendFully(fd, frame, sizeof(frame)); // blocks the loop on a full peer
}

void
eventLoop(int node)
{
    for (;;)
        pumpWrites(node);
}
