/**
 * @file
 * Lightweight span tracing for the transfer path. A span is a named
 * RAII scope — `SKYWAY_SPAN("sender.writeObject");` — whose elapsed
 * time (support/stopwatch.hh) folds into a process-wide per-name
 * aggregate: count, total ns, max ns, all relaxed atomics.
 *
 * The tracer additionally aggregates per *shuffle phase*:
 * SkywayContext::shuffleStart() calls SpanTracer::beginPhase(), which
 * closes the current segment (per-span deltas since the previous
 * boundary) and opens a new one. The paper's evaluation attributes
 * cost per shuffle (Figures 3/8); phase segments give the same
 * attribution for free on any workload.
 *
 * Span registration (first SKYWAY_SPAN execution per site) takes a
 * mutex; the scope itself is two clock reads and three relaxed
 * atomic adds — no locks, no allocation.
 *
 * Tracing is OFF by default: SKYWAY_SPAN sites check one relaxed
 * atomic bool and skip the clock reads entirely when disabled, so
 * un-traced runs pay ~1 ns per site (the ≤2% hot-path budget). The
 * bench `--json` path and SKYWAY_TRACE=1 turn it on
 * (SpanTracer::setTracingEnabled).
 */

#ifndef SKYWAY_OBS_SPAN_HH
#define SKYWAY_OBS_SPAN_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "support/stopwatch.hh"
#include "support/thread_annotations.hh"

namespace skyway
{
namespace obs
{

/** Cumulative aggregate for one span name. */
class SpanStats
{
  public:
    void
    record(std::uint64_t ns)
    {
        count_.fetch_add(1, std::memory_order_relaxed);
        totalNs_.fetch_add(ns, std::memory_order_relaxed);
        std::uint64_t seen = maxNs_.load(std::memory_order_relaxed);
        while (ns > seen &&
               !maxNs_.compare_exchange_weak(
                   seen, ns, std::memory_order_relaxed))
            ;
    }

    std::uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    totalNs() const
    {
        return totalNs_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    maxNs() const
    {
        return maxNs_.load(std::memory_order_relaxed);
    }

    /** Quiescent-state only: a concurrent record() may be lost. */
    void
    reset()
    {
        count_.store(0, std::memory_order_relaxed);
        totalNs_.store(0, std::memory_order_relaxed);
        maxNs_.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> totalNs_{0};
    std::atomic<std::uint64_t> maxNs_{0};
};

/**
 * RAII scope feeding one SpanStats. The pointer form is the gated
 * variant SKYWAY_SPAN expands to: a null target skips the clock
 * entirely (tracing disabled).
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(SpanStats &stats)
        : stats_(&stats), start_(Stopwatch::Clock::now())
    {}

    explicit ScopedSpan(SpanStats *stats) : stats_(stats)
    {
        if (stats_)
            start_ = Stopwatch::Clock::now();
    }

    ~ScopedSpan()
    {
        if (stats_)
            stats_->record(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Stopwatch::Clock::now() - start_)
                    .count()));
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    SpanStats *stats_;
    Stopwatch::Clock::time_point start_{};
};

class SpanTracer
{
  public:
    /** One span's contribution to a phase (or to the cumulative view). */
    struct SpanRow
    {
        std::string name;
        std::uint64_t count;
        std::uint64_t totalNs;
    };

    /** Per-span deltas accumulated between two phase boundaries. */
    struct PhaseReport
    {
        std::string label;
        std::vector<SpanRow> spans;
    };

    static SpanTracer &global();

    /**
     * Process-wide tracing gate. Off by default (or on when the
     * SKYWAY_TRACE env var is set); SKYWAY_SPAN sites skip their
     * clock reads entirely while it is off. Flipping it is safe at
     * any time — spans already open keep their target.
     */
    static bool
    tracingEnabled()
    {
        return tracingEnabled_.load(std::memory_order_relaxed);
    }

    static void
    setTracingEnabled(bool on)
    {
        tracingEnabled_.store(on, std::memory_order_relaxed);
    }

    /**
     * The aggregate named @p name, creating it on first use; the
     * returned reference is stable for the tracer's lifetime. Sites
     * cache it (SKYWAY_SPAN does so with a function-local static).
     */
    SpanStats &span(std::string_view name);

    /**
     * Close the current phase segment under its existing label and
     * open a new one labeled @p label. Spans with no activity in the
     * segment are omitted; segments with no activity at all are
     * dropped. At most `maxPhases` completed segments are retained
     * (oldest evicted; see droppedPhases()).
     */
    void beginPhase(std::string label);

    std::vector<PhaseReport> completedPhases() const;

    /** Segments evicted from the completed-phase window so far. */
    std::uint64_t
    droppedPhases() const
    {
        // dropped_ moves under mutex_ (beginPhase); reading it bare
        // raced with a concurrent phase boundary. Surfaced by the
        // SkywayGuard annotations (docs/STATIC_ANALYSIS.md).
        MutexLock lock(mutex_);
        return dropped_;
    }

    /** Cumulative (all-time) rows, name-sorted. */
    std::vector<SpanRow> cumulative() const;

    /**
     * {"spans":{name:{count,total_ns,max_ns}},"phases":[...]} — the
     * document the bench JSON embeds next to the metrics registry.
     */
    std::string toJson() const;

    /** Forget all measurements and phases; registrations survive. */
    void reset();

    static constexpr std::size_t maxPhases = 64;

  private:
    struct Baseline
    {
        std::uint64_t count = 0;
        std::uint64_t totalNs = 0;
    };

    /** Build the current segment's rows. */
    std::vector<SpanRow> segmentRowsLocked() const REQUIRES(mutex_);

    static std::atomic<bool> tracingEnabled_;

    mutable Mutex mutex_;
    /** Ordered map: JSON and reports come out name-sorted. The lock
     *  covers the map; the SpanStats objects behind the pointers are
     *  recorded into lock-free through stable references. */
    std::map<std::string, std::unique_ptr<SpanStats>, std::less<>>
        spans_ GUARDED_BY(mutex_);
    /** Per-span values at the last phase boundary. */
    std::map<std::string, Baseline, std::less<>> baseline_ GUARDED_BY(
        mutex_);
    std::string currentLabel_ GUARDED_BY(mutex_) = "startup";
    std::deque<PhaseReport> phases_ GUARDED_BY(mutex_);
    std::uint64_t dropped_ GUARDED_BY(mutex_) = 0;
};

} // namespace obs
} // namespace skyway

#define SKYWAY_OBS_CONCAT2(a, b) a##b
#define SKYWAY_OBS_CONCAT(a, b) SKYWAY_OBS_CONCAT2(a, b)

/**
 * Time the rest of the enclosing scope under @p name. The per-site
 * SpanStats lookup runs once (function-local static); each traced
 * execution costs two clock reads and three relaxed atomic adds, and
 * each un-traced one a single relaxed bool load
 * (SpanTracer::tracingEnabled).
 */
#define SKYWAY_SPAN(name)                                              \
    static ::skyway::obs::SpanStats &SKYWAY_OBS_CONCAT(               \
        skywaySpanStats_, __LINE__) =                                  \
        ::skyway::obs::SpanTracer::global().span(name);                \
    ::skyway::obs::ScopedSpan SKYWAY_OBS_CONCAT(skywaySpanScope_,      \
                                                __LINE__)(             \
        ::skyway::obs::SpanTracer::tracingEnabled()                    \
            ? &SKYWAY_OBS_CONCAT(skywaySpanStats_, __LINE__)           \
            : nullptr)

#endif // SKYWAY_OBS_SPAN_HH
