/**
 * @file
 * The managed heap: a HotSpot-like generational heap with bump-pointer
 * allocation in a young generation (eden + two survivor semispaces), a
 * tenured old generation with free-list allocation, a card table
 * tracking old-to-young references, and a root table for handles.
 *
 * Object references (Address) are real byte addresses inside the heap
 * arena, exactly as oops are in HotSpot, so Skyway's pointer
 * relativization/absolutization manipulates genuine pointers.
 */

#ifndef SKYWAY_HEAP_HEAP_HH
#define SKYWAY_HEAP_HEAP_HH

#include <cstring>
#include <deque>
#include <memory>
#include <vector>

#include "klass/klass.hh"
#include "klass/objectformat.hh"
#include "support/logging.hh"
#include "support/types.hh"

namespace skyway
{

/** Sizing and layout parameters for one node's heap. */
struct HeapConfig
{
    std::size_t edenBytes = 16ull << 20;
    std::size_t survivorBytes = 2ull << 20;
    std::size_t oldBytes = 192ull << 20;
    std::size_t cardBytes = 512;
    /** Scavenge cycles an object survives before promotion. */
    int tenureThreshold = 2;
    ObjectFormat format{};
};

/** Running totals the GC and benches report. */
struct HeapStats
{
    std::uint64_t scavenges = 0;
    std::uint64_t fullGcs = 0;
    std::uint64_t bytesPromoted = 0;
    std::uint64_t bytesAllocated = 0;
    std::uint64_t peakUsedBytes = 0;
};

/**
 * One node's managed heap.
 */
class ManagedHeap
{
  public:
    explicit ManagedHeap(const HeapConfig &config = HeapConfig{});

    ManagedHeap(const ManagedHeap &) = delete;
    ManagedHeap &operator=(const ManagedHeap &) = delete;

    const HeapConfig &config() const { return config_; }
    const ObjectFormat &format() const { return config_.format; }

    /// @name Allocation
    /// @{

    /**
     * Allocate and zero-initialize an instance of @p k in the young
     * generation (triggering a scavenge, then a full GC, on
     * exhaustion). The mark word is initialized and the klass word set.
     */
    Address allocateInstance(Klass *k);

    /** Allocate an array of @p length elements of array-klass @p k. */
    Address allocateArray(Klass *k, std::size_t length);

    /**
     * Allocate @p bytes of raw, word-aligned space directly in the
     * old generation. Used for Skyway input-buffer chunks (paper
     * section 4.3: input buffers live in the tenured generation).
     * Pass @p zero = false when the caller overwrites the whole range
     * anyway (streaming receive fills chunks with records and fillers
     * before the GC ever looks at them).
     */
    Address allocateOldRaw(std::size_t bytes, bool zero = true);

    /// @}
    /// @name Raw typed access
    /// @{

    template <typename T>
    T
    load(Address a, std::size_t off) const
    {
        T v;
        std::memcpy(&v, reinterpret_cast<const void *>(a + off), sizeof(T));
        return v;
    }

    template <typename T>
    void
    store(Address a, std::size_t off, T v)
    {
        std::memcpy(reinterpret_cast<void *>(a + off), &v, sizeof(T));
    }

    Word loadWord(Address a, std::size_t off) const
    {
        return load<Word>(a, off);
    }

    void storeWord(Address a, std::size_t off, Word v)
    {
        store<Word>(a, off, v);
    }

    Address loadRef(Address a, std::size_t off) const
    {
        return load<Address>(a, off);
    }

    /**
     * Reference store with the generational write barrier: dirties the
     * card of @p obj when it lives in the old generation.
     */
    void
    storeRef(Address obj, std::size_t off, Address val)
    {
        store<Address>(obj, off, val);
        if (inOld(obj))
            dirtyCard(obj);
    }

    /// @}
    /// @name Object introspection
    /// @{

    Word markOf(Address a) const { return loadWord(a, offsetMark); }
    void setMark(Address a, Word m) { storeWord(a, offsetMark, m); }

    Klass *
    klassOf(Address a) const
    {
        return reinterpret_cast<Klass *>(loadWord(a, offsetKlass));
    }

    std::int64_t
    arrayLength(Address a) const
    {
        return static_cast<std::int64_t>(
            loadWord(a, format().arrayLengthOffset()));
    }

    /** Byte offset of array element @p i for array @p a of klass @p k. */
    std::size_t
    arrayElemOffset(const Klass *k, std::size_t i) const
    {
        return format().arrayHeaderBytes() + i * k->elemSize();
    }

    /** Total size in bytes of the object at @p a. */
    std::size_t objectSize(Address a) const;

    /**
     * Identity hashcode: computed lazily from a heap-local counter and
     * cached in the mark word, as HotSpot does. Because the hash lives
     * in the header, Skyway transfers preserve it.
     */
    std::int32_t identityHash(Address a);

    /// @}
    /// @name Regions
    /// @{

    bool
    inYoung(Address a) const
    {
        return a >= youngBase_ && a < youngEnd_;
    }

    bool inEden(Address a) const { return a >= edenBase_ && a < edenEnd_; }

    bool
    inOld(Address a) const
    {
        return a >= oldBase_ && a < oldEnd_;
    }

    bool contains(Address a) const { return inYoung(a) || inOld(a); }

    /// @}
    /// @name Roots
    /// @{

    /** Register @p a as a GC root; returns a slot id. */
    std::size_t addRoot(Address a);

    /** Release a root slot. */
    void removeRoot(std::size_t slot);

    Address root(std::size_t slot) const { return roots_[slot]; }
    void setRoot(std::size_t slot, Address a) { roots_[slot] = a; }

    /// @}
    /// @name Card table
    /// @{

    std::size_t cardCount() const { return cards_.size(); }

    void dirtyCard(Address a);

    /** Conservatively dirty every card overlapping [a, a+len). */
    void dirtyCardRange(Address a, std::size_t len);

    bool
    cardIsDirty(std::size_t idx) const
    {
        return cards_[idx] != 0;
    }

    void clearCard(std::size_t idx) { cards_[idx] = 0; }

    /** Base address of the old-generation range card @p idx covers. */
    Address
    cardBase(std::size_t idx) const
    {
        return oldBase_ + idx * config_.cardBytes;
    }

    /// @}
    /// @name GC interface (used by the gc module)
    /// @{

    /** Install the collector invoked on allocation failure. May be null. */
    class Collector
    {
      public:
        virtual ~Collector() = default;
        /** Run a young-generation collection. */
        virtual void scavenge() = 0;
        /** Run a full collection. */
        virtual void fullGc() = 0;
    };

    void setCollector(Collector *c) { collector_ = c; }

    Address edenBase() const { return edenBase_; }
    Address edenTop() const { return edenTop_; }
    Address survivorFromBase() const { return survBase_[fromSpace_]; }
    Address survivorFromTop() const { return survTop_; }
    Address oldBase() const { return oldBase_; }
    Address oldTop() const { return oldTop_; }

    /** Bump-allocate in the current to-survivor space; 0 when full. */
    Address allocateInSurvivorTo(std::size_t bytes);

    /** Allocate in old gen for promotion; 0 when full (caller GCs). */
    Address allocateOldForGc(std::size_t bytes);

    /** Reset eden and swap survivor semispaces after a scavenge. */
    void finishScavenge();

    /** Direct access to the root slots (for the collectors). */
    std::deque<Address> &rootSlots() { return roots_; }

    /** Old-gen free-list management used by the sweeping collector. */
    void resetOldFreeList();
    void addOldFreeRange(Address a, std::size_t bytes);

    /** Sweep support: replace the old-gen live-byte accounting. */
    void setOldUsedBytes(std::size_t bytes) { oldUsedBytes_ = bytes; }

    /**
     * Pinned old-generation ranges: Skyway input buffers. While a
     * buffer is being filled it is *opaque* — its contents are not yet
     * valid objects (klass words hold type IDs, references are
     * relative) so the GC must neither walk nor free it. After
     * absolutization the range becomes *walkable*: its objects are
     * ordinary objects the collectors treat as live roots, until the
     * developer frees the buffer (paper section 3.2) and the range is
     * unpinned.
     */
    struct PinnedRange
    {
        Address addr;
        std::size_t bytes;
        bool walkable;
    };

    /** Pin [a, a+bytes); returns a pin id. */
    std::size_t pinOldRange(Address a, std::size_t bytes);

    /** Transition a pinned range to the walkable state. */
    void makePinWalkable(std::size_t pin);

    void unpinOldRange(std::size_t pin);

    const std::vector<PinnedRange> &pinnedRanges() const
    {
        return pinned_;
    }

    /**
     * Visit every object in the old generation in address order,
     * skipping filler records and opaque pinned ranges. @p visit is
     * called with the object address.
     */
    template <typename Visitor>
    void
    forEachOldObject(Visitor &&visit) const
    {
        Address a = oldBase_;
        while (a < oldTop_) {
            if (const PinnedRange *pr = opaquePinAt(a)) {
                a = pr->addr + pr->bytes;
                continue;
            }
            if (isFiller(a)) {
                a += fillerSize(a);
                continue;
            }
            visit(a);
            a += objectSize(a);
        }
    }

    /**
     * Write a filler record over [a, a+bytes) so linear old-gen walks
     * can skip the hole. @p bytes must be at least 2 words.
     */
    void writeFiller(Address a, std::size_t bytes);

    /**
     * Like writeFiller but also accepts a single-word hole, which is
     * encoded with a distinct magic (Skyway input-buffer chunk tails
     * can be as small as one word).
     */
    void writeFillerAny(Address a, std::size_t bytes);

    /** True when the word at @p a begins a filler record. */
    static bool
    isFiller(Address a)
    {
        Word w = *reinterpret_cast<const Word *>(a);
        return w == fillerMagic || w == fillerMagicOneWord;
    }

    /** Size of the filler record starting at @p a. */
    static std::size_t
    fillerSize(Address a)
    {
        if (*reinterpret_cast<const Word *>(a) == fillerMagicOneWord)
            return wordSize;
        return *reinterpret_cast<const Word *>(a + wordSize);
    }

    /// @}

    HeapStats &stats() { return stats_; }
    const HeapStats &stats() const { return stats_; }

    std::size_t
    usedYoungBytes() const
    {
        return (edenTop_ - edenBase_) + (survTop_ - survBase_[fromSpace_]);
    }

    std::size_t usedOldBytes() const { return oldUsedBytes_; }
    std::size_t usedBytes() const
    {
        return usedYoungBytes() + usedOldBytes();
    }

    /** Record current usage into the peak statistic. */
    void notePeak();

    /** Publishes the occupancy gauges one last time (level drops). */
    ~ManagedHeap();

  private:
    /**
     * Push this heap's occupancy into the process-wide
     * `skyway.heap.in_use_bytes` / `skyway.heap.peak_bytes` gauges
     * (docs/OBSERVABILITY.md): delta-published at allocation and GC
     * boundaries, never per object.
     */
    void publishOccupancy();

    std::uint64_t publishedInUseBytes_ = 0;
    std::uint64_t publishedPeakBytes_ = 0;

    static constexpr Word fillerMagic = 0xf111f111f111f111ull;
    static constexpr Word fillerMagicOneWord = 0xf111f111f111f112ull;

    Address allocateYoung(std::size_t bytes);
    void initHeader(Address a, Klass *k);

    /** The opaque pinned range containing @p a, or nullptr. */
    const PinnedRange *opaquePinAt(Address a) const;

    HeapConfig config_;
    std::unique_ptr<std::uint8_t[]> arena_;

    Address youngBase_ = 0, youngEnd_ = 0;
    Address edenBase_ = 0, edenEnd_ = 0, edenTop_ = 0;
    Address survBase_[2] = {0, 0};
    Address survEnd_[2] = {0, 0};
    Address survTop_ = 0;   // allocation top in from-space (live data)
    Address survToTop_ = 0; // allocation top in to-space during scavenge
    int fromSpace_ = 0;

    Address oldBase_ = 0, oldEnd_ = 0, oldTop_ = 0;
    std::size_t oldUsedBytes_ = 0;

    /** First-fit free list of swept old-gen ranges. */
    struct FreeRange
    {
        Address addr;
        std::size_t bytes;
    };
    std::vector<FreeRange> oldFree_;
    std::vector<PinnedRange> pinned_;
    std::vector<std::size_t> freePinSlots_;

    std::vector<std::uint8_t> cards_;
    std::deque<Address> roots_;
    std::vector<std::size_t> freeRootSlots_;

    Collector *collector_ = nullptr;
    std::uint64_t hashCounter_ = 0x9e3779b97f4a7c15ull;
    HeapStats stats_;
};

} // namespace skyway

#endif // SKYWAY_HEAP_HEAP_HH
