# Empty dependencies file for test_spark_actions.
# This may be replaced when dependencies are built.
