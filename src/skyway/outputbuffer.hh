/**
 * @file
 * Skyway output buffers (paper section 3.2): per-destination buffers
 * in *native* (off-heap) memory — they must not interact with the GC,
 * which could otherwise reclaim objects before they are sent — with
 * streaming: the buffer flushes to its sink whenever the next record
 * does not fit, and `flushedBytes` tracks how much logical address
 * space has already left the buffer (Algorithm 2, line 10).
 *
 * Records never span a flush boundary, so every flushed segment is a
 * whole number of object records; the receiver relies on this when
 * placing records into heap chunks.
 */

#ifndef SKYWAY_SKYWAY_OUTPUTBUFFER_HH
#define SKYWAY_SKYWAY_OUTPUTBUFFER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "support/logging.hh"
#include "support/types.hh"

namespace skyway
{

/** Default output-buffer capacity (tunable per stream). */
constexpr std::size_t defaultOutputBufferBytes = 256 << 10;

class OutputBuffer
{
  public:
    /** Sink for flushed segments (disk file, socket, test vector). */
    using FlushFn =
        std::function<void(const std::uint8_t *data, std::size_t len)>;

    OutputBuffer(std::size_t capacity, FlushFn flush)
        : buf_(std::make_unique_for_overwrite<std::uint8_t[]>(
              capacity)),
          cap_(capacity),
          flush_(std::move(flush))
    {
        panicIf(capacity < 64, "OutputBuffer: capacity too small");
    }

    /** Logical end of the buffer: where the next record will go. */
    std::uint64_t allocableAddr() const { return allocable_; }

    /** Claim @p bytes of logical space for a discovered object. */
    std::uint64_t
    claim(std::size_t bytes)
    {
        std::uint64_t addr = allocable_;
        allocable_ += bytes;
        return addr;
    }

    /** Logical bytes already streamed out. */
    std::uint64_t flushedBytes() const { return flushed_; }

    /**
     * Return a pointer to physical space for the record at logical
     * address @p addr of @p bytes. Writes must be sequential (clone
     * order equals claim order under the BFS); flushes as needed.
     */
    std::uint8_t *
    writeAt(std::uint64_t addr, std::size_t bytes)
    {
        panicIf(addr != logicalWritten_,
                "OutputBuffer: non-sequential record write");
        logicalWritten_ += bytes;
        return reserve(bytes);
    }

    /**
     * Append marker words to the physical stream *without* consuming
     * logical address space: the receiver strips markers before
     * placing records, so relative addresses ignore them (the
     * paper's top marks are delimiters, not objects).
     */
    void
    writeMarker(const Word *words, std::size_t n)
    {
        std::uint8_t *p = reserve(n * wordSize);
        std::memcpy(p, words, n * wordSize);
    }

    /** Force out whatever the buffer holds. */
    void
    flushNow()
    {
        if (used_ == 0)
            return;
        flush_(buf_.get(), used_);
        flushed_ += used_;
        used_ = 0;
    }

    /** Total logical bytes produced so far (streamed + resident). */
    std::uint64_t totalBytes() const { return flushed_ + used_; }

  private:
    /** Whole-unit physical append (flushing first when full). */
    std::uint8_t *
    reserve(std::size_t bytes)
    {
        if (used_ + bytes > cap_) {
            flushNow();
            if (bytes > cap_) {
                // Oversized record: grow the (native) buffer.
                buf_ = std::make_unique_for_overwrite<
                    std::uint8_t[]>(bytes);
                cap_ = bytes;
            }
        }
        std::uint8_t *p = buf_.get() + used_;
        used_ += bytes;
        return p;
    }

    std::unique_ptr<std::uint8_t[]> buf_;
    std::size_t cap_;
    FlushFn flush_;
    std::uint64_t allocable_ = 0;
    std::uint64_t flushed_ = 0;
    std::uint64_t logicalWritten_ = 0;
    std::size_t used_ = 0;
};

} // namespace skyway

#endif // SKYWAY_SKYWAY_OUTPUTBUFFER_HH
