file(REMOVE_RECURSE
  "libskyway_klass.a"
)
