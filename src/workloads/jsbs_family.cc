#include "workloads/jsbs_family.hh"

namespace skyway
{

MediaValues
extractMedia(SdEnv &env, const MediaSchema &s, Address content)
{
    ManagedHeap &h = env.heap;
    ObjectBuilder builder(env.heap, env.klasses);
    MediaValues v;

    Address media = field::getRef(h, content, *s.cMedia);
    v.uri = builder.stringValue(field::getRef(h, media, *s.mUri));
    v.title = builder.stringValue(field::getRef(h, media, *s.mTitle));
    v.width = field::get<std::int32_t>(h, media, *s.mWidth);
    v.height = field::get<std::int32_t>(h, media, *s.mHeight);
    v.format = builder.stringValue(field::getRef(h, media, *s.mFormat));
    v.duration = field::get<std::int64_t>(h, media, *s.mDuration);
    v.size = field::get<std::int64_t>(h, media, *s.mSize);
    v.bitrate = field::get<std::int32_t>(h, media, *s.mBitrate);
    v.hasBitrate =
        field::get<std::uint8_t>(h, media, *s.mHasBitrate) != 0;
    v.player = field::get<std::int32_t>(h, media, *s.mPlayer);
    v.copyright =
        builder.stringValue(field::getRef(h, media, *s.mCopyright));

    Address persons = field::getRef(h, media, *s.mPersons);
    auto np = static_cast<std::size_t>(h.arrayLength(persons));
    for (std::size_t i = 0; i < np; ++i)
        v.persons.push_back(
            builder.stringValue(array::getRef(h, persons, i)));

    Address images = field::getRef(h, content, *s.cImages);
    auto ni = static_cast<std::size_t>(h.arrayLength(images));
    for (std::size_t i = 0; i < ni; ++i) {
        Address img = array::getRef(h, images, i);
        MediaValues::Img out;
        out.uri = builder.stringValue(field::getRef(h, img, *s.iUri));
        out.title =
            builder.stringValue(field::getRef(h, img, *s.iTitle));
        out.width = field::get<std::int32_t>(h, img, *s.iWidth);
        out.height = field::get<std::int32_t>(h, img, *s.iHeight);
        out.size = field::get<std::int32_t>(h, img, *s.iSize);
        v.images.push_back(std::move(out));
    }
    return v;
}

MediaValues
extractMediaReflective(SdEnv &env, Address content)
{
    // The *-generic path: every field resolved by name at run time.
    ManagedHeap &h = env.heap;
    ObjectBuilder builder(env.heap, env.klasses);
    MediaValues v;

    Address media = reflect::getRefField(h, content, "media");
    v.uri = builder.stringValue(reflect::getRefField(h, media, "uri"));
    v.title =
        builder.stringValue(reflect::getRefField(h, media, "title"));
    v.width = reflect::getField<std::int32_t>(h, media, "width");
    v.height = reflect::getField<std::int32_t>(h, media, "height");
    v.format =
        builder.stringValue(reflect::getRefField(h, media, "format"));
    v.duration = reflect::getField<std::int64_t>(h, media, "duration");
    v.size = reflect::getField<std::int64_t>(h, media, "size");
    v.bitrate = reflect::getField<std::int32_t>(h, media, "bitrate");
    v.hasBitrate =
        reflect::getField<std::uint8_t>(h, media, "hasBitrate") != 0;
    v.player = reflect::getField<std::int32_t>(h, media, "player");
    v.copyright = builder.stringValue(
        reflect::getRefField(h, media, "copyright"));

    Address persons = reflect::getRefField(h, media, "persons");
    auto np = static_cast<std::size_t>(h.arrayLength(persons));
    for (std::size_t i = 0; i < np; ++i)
        v.persons.push_back(
            builder.stringValue(array::getRef(h, persons, i)));

    Address images = reflect::getRefField(h, content, "images");
    auto ni = static_cast<std::size_t>(h.arrayLength(images));
    for (std::size_t i = 0; i < ni; ++i) {
        Address img = array::getRef(h, images, i);
        MediaValues::Img out;
        out.uri =
            builder.stringValue(reflect::getRefField(h, img, "uri"));
        out.title =
            builder.stringValue(reflect::getRefField(h, img, "title"));
        out.width = reflect::getField<std::int32_t>(h, img, "width");
        out.height = reflect::getField<std::int32_t>(h, img, "height");
        out.size = reflect::getField<std::int32_t>(h, img, "size");
        v.images.push_back(std::move(out));
    }
    return v;
}

Address
materializeMedia(SdEnv &env, const MediaSchema &s,
                 const MediaValues &v)
{
    ManagedHeap &h = env.heap;
    ObjectBuilder builder(env.heap, env.klasses);
    LocalRoots roots(h);

    auto str = [&](const std::string &x) {
        return roots.push(builder.makeString(x));
    };

    std::size_t ruri = str(v.uri), rtitle = str(v.title),
                rformat = str(v.format), rcopy = str(v.copyright);
    std::vector<std::size_t> rpersons;
    for (const auto &p : v.persons)
        rpersons.push_back(str(p));

    std::size_t rparr =
        roots.push(h.allocateArray(s.stringArray, v.persons.size()));
    for (std::size_t i = 0; i < rpersons.size(); ++i)
        array::setRef(h, roots.get(rparr), i, roots.get(rpersons[i]));

    std::size_t rmedia = roots.push(h.allocateInstance(s.media));
    {
        Address m = roots.get(rmedia);
        field::setRef(h, m, *s.mUri, roots.get(ruri));
        field::setRef(h, m, *s.mTitle, roots.get(rtitle));
        field::set<std::int32_t>(h, m, *s.mWidth, v.width);
        field::set<std::int32_t>(h, m, *s.mHeight, v.height);
        field::setRef(h, m, *s.mFormat, roots.get(rformat));
        field::set<std::int64_t>(h, m, *s.mDuration, v.duration);
        field::set<std::int64_t>(h, m, *s.mSize, v.size);
        field::set<std::int32_t>(h, m, *s.mBitrate, v.bitrate);
        field::set<std::uint8_t>(h, m, *s.mHasBitrate,
                                 v.hasBitrate ? 1 : 0);
        field::setRef(h, m, *s.mPersons, roots.get(rparr));
        field::set<std::int32_t>(h, m, *s.mPlayer, v.player);
        field::setRef(h, m, *s.mCopyright, roots.get(rcopy));
    }

    std::vector<std::size_t> rimgs;
    for (const auto &img : v.images) {
        std::size_t riuri = str(img.uri), rititle = str(img.title);
        std::size_t ri = roots.push(h.allocateInstance(s.image));
        Address a = roots.get(ri);
        field::setRef(h, a, *s.iUri, roots.get(riuri));
        field::setRef(h, a, *s.iTitle, roots.get(rititle));
        field::set<std::int32_t>(h, a, *s.iWidth, img.width);
        field::set<std::int32_t>(h, a, *s.iHeight, img.height);
        field::set<std::int32_t>(h, a, *s.iSize, img.size);
        rimgs.push_back(ri);
    }
    std::size_t riarr =
        roots.push(h.allocateArray(s.imageArray, v.images.size()));
    for (std::size_t i = 0; i < rimgs.size(); ++i)
        array::setRef(h, roots.get(riarr), i, roots.get(rimgs[i]));

    Address content = h.allocateInstance(s.content);
    field::setRef(h, content, *s.cMedia, roots.get(rmedia));
    field::setRef(h, content, *s.cImages, roots.get(riarr));
    return content;
}

namespace
{

/// @name colfer: index-byte headers, defaults skipped, varints
/// @{

void
colferEncode(const MediaValues &v, ByteSink &out)
{
    auto str = [&](std::uint8_t idx, const std::string &s) {
        if (s.empty())
            return;
        out.writeU8(idx);
        out.writeString(s);
    };
    auto i64 = [&](std::uint8_t idx, std::int64_t x) {
        if (x == 0)
            return;
        out.writeU8(idx);
        out.writeVarI64(x);
    };
    str(0, v.uri);
    str(1, v.title);
    i64(2, v.width);
    i64(3, v.height);
    str(4, v.format);
    i64(5, v.duration);
    i64(6, v.size);
    i64(7, v.bitrate);
    if (v.hasBitrate)
        out.writeU8(8);
    if (!v.persons.empty()) {
        out.writeU8(9);
        out.writeVarU64(v.persons.size());
        for (const auto &p : v.persons)
            out.writeString(p);
    }
    i64(10, v.player);
    str(11, v.copyright);
    if (!v.images.empty()) {
        out.writeU8(12);
        out.writeVarU64(v.images.size());
        for (const auto &img : v.images) {
            out.writeString(img.uri);
            out.writeString(img.title);
            out.writeVarI64(img.width);
            out.writeVarI64(img.height);
            out.writeVarI64(img.size);
        }
    }
    out.writeU8(0x7f); // terminator
}

MediaValues
colferDecode(ByteSource &in)
{
    MediaValues v;
    while (true) {
        std::uint8_t idx = in.readU8();
        if (idx == 0x7f)
            break;
        switch (idx) {
          case 0: v.uri = in.readString(); break;
          case 1: v.title = in.readString(); break;
          case 2: v.width = in.readVarI64(); break;
          case 3: v.height = in.readVarI64(); break;
          case 4: v.format = in.readString(); break;
          case 5: v.duration = in.readVarI64(); break;
          case 6: v.size = in.readVarI64(); break;
          case 7: v.bitrate = in.readVarI64(); break;
          case 8: v.hasBitrate = true; break;
          case 9: {
            std::size_t n = in.readVarU64();
            for (std::size_t i = 0; i < n; ++i)
                v.persons.push_back(in.readString());
            break;
          }
          case 10: v.player = in.readVarI64(); break;
          case 11: v.copyright = in.readString(); break;
          case 12: {
            std::size_t n = in.readVarU64();
            for (std::size_t i = 0; i < n; ++i) {
                MediaValues::Img img;
                img.uri = in.readString();
                img.title = in.readString();
                img.width = in.readVarI64();
                img.height = in.readVarI64();
                img.size = in.readVarI64();
                v.images.push_back(std::move(img));
            }
            break;
          }
          default: panic("colfer: bad field index");
        }
    }
    return v;
}

/// @}
/// @name protobuf wire helpers
/// @{

constexpr std::uint32_t wtVarint = 0;
constexpr std::uint32_t wtLen = 2;
constexpr std::uint32_t wtGroupStart = 3;
constexpr std::uint32_t wtGroupEnd = 4;

void
pbTag(ByteSink &out, std::uint32_t field, std::uint32_t wt)
{
    out.writeVarU32((field << 3) | wt);
}

void
pbString(ByteSink &out, std::uint32_t field, const std::string &s)
{
    pbTag(out, field, wtLen);
    out.writeString(s);
}

void
pbVarint(ByteSink &out, std::uint32_t field, std::int64_t x)
{
    pbTag(out, field, wtVarint);
    out.writeVarI64(x);
}

/** protostuff: single pass, nested messages as groups. */
void
protostuffEncodeImage(const MediaValues::Img &img, ByteSink &out)
{
    pbString(out, 1, img.uri);
    pbString(out, 2, img.title);
    pbVarint(out, 3, img.width);
    pbVarint(out, 4, img.height);
    pbVarint(out, 5, img.size);
}

void
protostuffEncode(const MediaValues &v, ByteSink &out)
{
    pbTag(out, 1, wtGroupStart); // media
    pbString(out, 1, v.uri);
    pbString(out, 2, v.title);
    pbVarint(out, 3, v.width);
    pbVarint(out, 4, v.height);
    pbString(out, 5, v.format);
    pbVarint(out, 6, v.duration);
    pbVarint(out, 7, v.size);
    pbVarint(out, 8, v.bitrate);
    pbVarint(out, 9, v.hasBitrate ? 1 : 0);
    for (const auto &p : v.persons)
        pbString(out, 10, p);
    pbVarint(out, 11, v.player);
    pbString(out, 12, v.copyright);
    pbTag(out, 1, wtGroupEnd);

    for (const auto &img : v.images) {
        pbTag(out, 2, wtGroupStart);
        protostuffEncodeImage(img, out);
        pbTag(out, 2, wtGroupEnd);
    }
}

MediaValues
protostuffDecode(ByteSource &in)
{
    MediaValues v;
    // media group
    std::uint32_t tag = in.readVarU32();
    panicIf(tag != ((1u << 3) | wtGroupStart), "protostuff: bad start");
    while (true) {
        tag = in.readVarU32();
        if (tag == ((1u << 3) | wtGroupEnd))
            break;
        std::uint32_t field = tag >> 3;
        switch (field) {
          case 1: v.uri = in.readString(); break;
          case 2: v.title = in.readString(); break;
          case 3: v.width = in.readVarI64(); break;
          case 4: v.height = in.readVarI64(); break;
          case 5: v.format = in.readString(); break;
          case 6: v.duration = in.readVarI64(); break;
          case 7: v.size = in.readVarI64(); break;
          case 8: v.bitrate = in.readVarI64(); break;
          case 9: v.hasBitrate = in.readVarI64() != 0; break;
          case 10: v.persons.push_back(in.readString()); break;
          case 11: v.player = in.readVarI64(); break;
          case 12: v.copyright = in.readString(); break;
          default: panic("protostuff: bad media field");
        }
    }
    // image groups until source end or foreign tag — the caller knows
    // one record per stream chunk; we stop at stream end or a tag
    // that is not an image group start.
    while (!in.atEnd()) {
        std::size_t pos = in.position();
        std::uint32_t t = in.readVarU32();
        if (t != ((2u << 3) | wtGroupStart)) {
            // Not ours: cannot rewind ByteSource — treat as error.
            (void)pos;
            panic("protostuff: unexpected trailing tag");
        }
        MediaValues::Img img;
        while (true) {
            std::uint32_t it = in.readVarU32();
            if (it == ((2u << 3) | wtGroupEnd))
                break;
            switch (it >> 3) {
              case 1: img.uri = in.readString(); break;
              case 2: img.title = in.readString(); break;
              case 3: img.width = in.readVarI64(); break;
              case 4: img.height = in.readVarI64(); break;
              case 5: img.size = in.readVarI64(); break;
              default: panic("protostuff: bad image field");
            }
        }
        v.images.push_back(std::move(img));
    }
    return v;
}

/** protobuf: nested messages length-prefixed (needs a temp buffer). */
void
protobufEncode(const MediaValues &v, ByteSink &out)
{
    VectorSink media;
    pbString(media, 1, v.uri);
    pbString(media, 2, v.title);
    pbVarint(media, 3, v.width);
    pbVarint(media, 4, v.height);
    pbString(media, 5, v.format);
    pbVarint(media, 6, v.duration);
    pbVarint(media, 7, v.size);
    pbVarint(media, 8, v.bitrate);
    pbVarint(media, 9, v.hasBitrate ? 1 : 0);
    for (const auto &p : v.persons)
        pbString(media, 10, p);
    pbVarint(media, 11, v.player);
    pbString(media, 12, v.copyright);

    pbTag(out, 1, wtLen);
    out.writeVarU64(media.bytes().size());
    out.write(media.bytes().data(), media.bytes().size());

    for (const auto &img : v.images) {
        VectorSink sub;
        protostuffEncodeImage(img, sub);
        pbTag(out, 2, wtLen);
        out.writeVarU64(sub.bytes().size());
        out.write(sub.bytes().data(), sub.bytes().size());
    }
    pbTag(out, 3, wtVarint); // explicit end marker field
    out.writeVarI64(0);
}

MediaValues
protobufDecode(ByteSource &in)
{
    MediaValues v;
    while (true) {
        std::uint32_t tag = in.readVarU32();
        std::uint32_t field = tag >> 3;
        if (field == 3) {
            in.readVarI64();
            break;
        }
        std::size_t len = in.readVarU64();
        ByteSource sub(in.view(len), len);
        if (field == 1) {
            while (!sub.atEnd()) {
                std::uint32_t t = sub.readVarU32();
                switch (t >> 3) {
                  case 1: v.uri = sub.readString(); break;
                  case 2: v.title = sub.readString(); break;
                  case 3: v.width = sub.readVarI64(); break;
                  case 4: v.height = sub.readVarI64(); break;
                  case 5: v.format = sub.readString(); break;
                  case 6: v.duration = sub.readVarI64(); break;
                  case 7: v.size = sub.readVarI64(); break;
                  case 8: v.bitrate = sub.readVarI64(); break;
                  case 9: v.hasBitrate = sub.readVarI64() != 0; break;
                  case 10: v.persons.push_back(sub.readString()); break;
                  case 11: v.player = sub.readVarI64(); break;
                  case 12: v.copyright = sub.readString(); break;
                  default: panic("protobuf: bad media field");
                }
            }
        } else if (field == 2) {
            MediaValues::Img img;
            while (!sub.atEnd()) {
                std::uint32_t t = sub.readVarU32();
                switch (t >> 3) {
                  case 1: img.uri = sub.readString(); break;
                  case 2: img.title = sub.readString(); break;
                  case 3: img.width = sub.readVarI64(); break;
                  case 4: img.height = sub.readVarI64(); break;
                  case 5: img.size = sub.readVarI64(); break;
                  default: panic("protobuf: bad image field");
                }
            }
            v.images.push_back(std::move(img));
        } else {
            panic("protobuf: bad top field");
        }
    }
    return v;
}

/// @}
/// @name datakernel / avro: positional, no tags
/// @{

void
positionalEncode(const MediaValues &v, ByteSink &out)
{
    out.writeString(v.uri);
    out.writeString(v.title);
    out.writeVarI32(v.width);
    out.writeVarI32(v.height);
    out.writeString(v.format);
    out.writeVarI64(v.duration);
    out.writeVarI64(v.size);
    out.writeVarI32(v.bitrate);
    out.writeU8(v.hasBitrate ? 1 : 0);
    out.writeVarU64(v.persons.size());
    for (const auto &p : v.persons)
        out.writeString(p);
    out.writeVarI32(v.player);
    out.writeString(v.copyright);
    out.writeVarU64(v.images.size());
    for (const auto &img : v.images) {
        out.writeString(img.uri);
        out.writeString(img.title);
        out.writeVarI32(img.width);
        out.writeVarI32(img.height);
        out.writeVarI32(img.size);
    }
}

MediaValues
positionalDecode(ByteSource &in)
{
    MediaValues v;
    v.uri = in.readString();
    v.title = in.readString();
    v.width = in.readVarI32();
    v.height = in.readVarI32();
    v.format = in.readString();
    v.duration = in.readVarI64();
    v.size = in.readVarI64();
    v.bitrate = in.readVarI32();
    v.hasBitrate = in.readU8() != 0;
    std::size_t np = in.readVarU64();
    for (std::size_t i = 0; i < np; ++i)
        v.persons.push_back(in.readString());
    v.player = in.readVarI32();
    v.copyright = in.readString();
    std::size_t ni = in.readVarU64();
    for (std::size_t i = 0; i < ni; ++i) {
        MediaValues::Img img;
        img.uri = in.readString();
        img.title = in.readString();
        img.width = in.readVarI32();
        img.height = in.readVarI32();
        img.size = in.readVarI32();
        v.images.push_back(std::move(img));
    }
    return v;
}

/** avro: block-encoded arrays (count ... 0), zigzag everywhere. */
void
avroEncode(const MediaValues &v, ByteSink &out)
{
    out.writeString(v.uri);
    out.writeString(v.title);
    out.writeVarI64(v.width);
    out.writeVarI64(v.height);
    out.writeString(v.format);
    out.writeVarI64(v.duration);
    out.writeVarI64(v.size);
    out.writeVarI64(v.bitrate);
    out.writeU8(v.hasBitrate ? 1 : 0);
    if (!v.persons.empty()) {
        out.writeVarI64(static_cast<std::int64_t>(v.persons.size()));
        for (const auto &p : v.persons)
            out.writeString(p);
    }
    out.writeVarI64(0); // array terminator block
    out.writeVarI64(v.player);
    out.writeString(v.copyright);
    if (!v.images.empty()) {
        out.writeVarI64(static_cast<std::int64_t>(v.images.size()));
        for (const auto &img : v.images) {
            out.writeString(img.uri);
            out.writeString(img.title);
            out.writeVarI64(img.width);
            out.writeVarI64(img.height);
            out.writeVarI64(img.size);
        }
    }
    out.writeVarI64(0);
}

MediaValues
avroDecode(ByteSource &in)
{
    MediaValues v;
    v.uri = in.readString();
    v.title = in.readString();
    v.width = in.readVarI64();
    v.height = in.readVarI64();
    v.format = in.readString();
    v.duration = in.readVarI64();
    v.size = in.readVarI64();
    v.bitrate = in.readVarI64();
    v.hasBitrate = in.readU8() != 0;
    while (true) {
        std::int64_t n = in.readVarI64();
        if (n == 0)
            break;
        for (std::int64_t i = 0; i < n; ++i)
            v.persons.push_back(in.readString());
    }
    v.player = in.readVarI64();
    v.copyright = in.readString();
    while (true) {
        std::int64_t n = in.readVarI64();
        if (n == 0)
            break;
        for (std::int64_t i = 0; i < n; ++i) {
            MediaValues::Img img;
            img.uri = in.readString();
            img.title = in.readString();
            img.width = in.readVarI64();
            img.height = in.readVarI64();
            img.size = in.readVarI64();
            v.images.push_back(std::move(img));
        }
    }
    return v;
}

/// @}
/// @name thrift binary / compact
/// @{

constexpr std::uint8_t ttStop = 0;
constexpr std::uint8_t ttBool = 2;
constexpr std::uint8_t ttI32 = 8;
constexpr std::uint8_t ttI64 = 10;
constexpr std::uint8_t ttString = 11;
constexpr std::uint8_t ttList = 15;
constexpr std::uint8_t ttStruct = 12;

void
thriftField(ByteSink &out, std::uint8_t type, std::int16_t id)
{
    out.writeU8(type);
    out.writeU16(static_cast<std::uint16_t>(id));
}

void
thriftString(ByteSink &out, std::int16_t id, const std::string &s)
{
    thriftField(out, ttString, id);
    out.writeU32(static_cast<std::uint32_t>(s.size()));
    out.write(s.data(), s.size());
}

std::string
thriftReadString(ByteSource &in)
{
    std::uint32_t n = in.readU32();
    const std::uint8_t *p = in.view(n);
    return std::string(reinterpret_cast<const char *>(p), n);
}

void
thriftEncode(const MediaValues &v, ByteSink &out)
{
    // struct MediaContent { 1: Media media; 2: list<Image> images }
    thriftField(out, ttStruct, 1);
    thriftString(out, 1, v.uri);
    thriftString(out, 2, v.title);
    thriftField(out, ttI32, 3);
    out.writeU32(v.width);
    thriftField(out, ttI32, 4);
    out.writeU32(v.height);
    thriftString(out, 5, v.format);
    thriftField(out, ttI64, 6);
    out.writeU64(v.duration);
    thriftField(out, ttI64, 7);
    out.writeU64(v.size);
    thriftField(out, ttI32, 8);
    out.writeU32(v.bitrate);
    thriftField(out, ttBool, 9);
    out.writeU8(v.hasBitrate ? 1 : 0);
    thriftField(out, ttList, 10);
    out.writeU8(ttString);
    out.writeU32(static_cast<std::uint32_t>(v.persons.size()));
    for (const auto &p : v.persons) {
        out.writeU32(static_cast<std::uint32_t>(p.size()));
        out.write(p.data(), p.size());
    }
    thriftField(out, ttI32, 11);
    out.writeU32(v.player);
    thriftString(out, 12, v.copyright);
    out.writeU8(ttStop);

    thriftField(out, ttList, 2);
    out.writeU8(ttStruct);
    out.writeU32(static_cast<std::uint32_t>(v.images.size()));
    for (const auto &img : v.images) {
        thriftString(out, 1, img.uri);
        thriftString(out, 2, img.title);
        thriftField(out, ttI32, 3);
        out.writeU32(img.width);
        thriftField(out, ttI32, 4);
        out.writeU32(img.height);
        thriftField(out, ttI32, 5);
        out.writeU32(img.size);
        out.writeU8(ttStop);
    }
    out.writeU8(ttStop);
}

MediaValues
thriftDecode(ByteSource &in)
{
    MediaValues v;
    while (true) {
        std::uint8_t type = in.readU8();
        if (type == ttStop)
            break;
        std::int16_t id = static_cast<std::int16_t>(in.readU16());
        if (type == ttStruct && id == 1) {
            while (true) {
                std::uint8_t ft = in.readU8();
                if (ft == ttStop)
                    break;
                std::int16_t fid =
                    static_cast<std::int16_t>(in.readU16());
                switch (fid) {
                  case 1: v.uri = thriftReadString(in); break;
                  case 2: v.title = thriftReadString(in); break;
                  case 3: v.width = in.readU32(); break;
                  case 4: v.height = in.readU32(); break;
                  case 5: v.format = thriftReadString(in); break;
                  case 6: v.duration = in.readU64(); break;
                  case 7: v.size = in.readU64(); break;
                  case 8: v.bitrate = in.readU32(); break;
                  case 9: v.hasBitrate = in.readU8() != 0; break;
                  case 10: {
                    in.readU8(); // element type
                    std::uint32_t n = in.readU32();
                    for (std::uint32_t i = 0; i < n; ++i)
                        v.persons.push_back(thriftReadString(in));
                    break;
                  }
                  case 11: v.player = in.readU32(); break;
                  case 12: v.copyright = thriftReadString(in); break;
                  default: panic("thrift: bad media field");
                }
            }
        } else if (type == ttList && id == 2) {
            in.readU8();
            std::uint32_t n = in.readU32();
            for (std::uint32_t i = 0; i < n; ++i) {
                MediaValues::Img img;
                while (true) {
                    std::uint8_t ft = in.readU8();
                    if (ft == ttStop)
                        break;
                    std::int16_t fid =
                        static_cast<std::int16_t>(in.readU16());
                    switch (fid) {
                      case 1: img.uri = thriftReadString(in); break;
                      case 2: img.title = thriftReadString(in); break;
                      case 3: img.width = in.readU32(); break;
                      case 4: img.height = in.readU32(); break;
                      case 5: img.size = in.readU32(); break;
                      default: panic("thrift: bad image field");
                    }
                }
                v.images.push_back(std::move(img));
            }
        } else {
            panic("thrift: bad top field");
        }
    }
    return v;
}

/** thrift-compact: nibble headers + zigzag varints. */
void
tcField(ByteSink &out, std::uint8_t type, std::uint8_t id)
{
    out.writeU8(static_cast<std::uint8_t>((id << 4) | type));
}

void
thriftCompactEncode(const MediaValues &v, ByteSink &out)
{
    tcField(out, 1, 1); // media struct
    tcField(out, 2, 1);
    out.writeString(v.uri);
    tcField(out, 2, 2);
    out.writeString(v.title);
    tcField(out, 3, 3);
    out.writeVarI32(v.width);
    tcField(out, 3, 4);
    out.writeVarI32(v.height);
    tcField(out, 2, 5);
    out.writeString(v.format);
    tcField(out, 4, 6);
    out.writeVarI64(v.duration);
    tcField(out, 4, 7);
    out.writeVarI64(v.size);
    tcField(out, 3, 8);
    out.writeVarI32(v.bitrate);
    tcField(out, 5, 9);
    out.writeU8(v.hasBitrate ? 1 : 0);
    tcField(out, 6, 10);
    out.writeVarU64(v.persons.size());
    for (const auto &p : v.persons)
        out.writeString(p);
    tcField(out, 3, 11);
    out.writeVarI32(v.player);
    tcField(out, 2, 12);
    out.writeString(v.copyright);
    out.writeU8(0);

    tcField(out, 6, 2); // images list
    out.writeVarU64(v.images.size());
    for (const auto &img : v.images) {
        out.writeString(img.uri);
        out.writeString(img.title);
        out.writeVarI32(img.width);
        out.writeVarI32(img.height);
        out.writeVarI32(img.size);
    }
    out.writeU8(0);
}

MediaValues
thriftCompactDecode(ByteSource &in)
{
    MediaValues v;
    while (true) {
        std::uint8_t hdr = in.readU8();
        if (hdr == 0)
            break;
        std::uint8_t id = hdr >> 4;
        if (id == 1) {
            while (true) {
                std::uint8_t fh = in.readU8();
                if (fh == 0)
                    break;
                switch (fh >> 4) {
                  case 1: v.uri = in.readString(); break;
                  case 2: v.title = in.readString(); break;
                  case 3: v.width = in.readVarI32(); break;
                  case 4: v.height = in.readVarI32(); break;
                  case 5: v.format = in.readString(); break;
                  case 6: v.duration = in.readVarI64(); break;
                  case 7: v.size = in.readVarI64(); break;
                  case 8: v.bitrate = in.readVarI32(); break;
                  case 9: v.hasBitrate = in.readU8() != 0; break;
                  case 10: {
                    std::size_t n = in.readVarU64();
                    for (std::size_t i = 0; i < n; ++i)
                        v.persons.push_back(in.readString());
                    break;
                  }
                  case 11: v.player = in.readVarI32(); break;
                  case 12: v.copyright = in.readString(); break;
                  default: panic("thrift-compact: bad media field");
                }
            }
        } else if (id == 2) {
            std::size_t n = in.readVarU64();
            for (std::size_t i = 0; i < n; ++i) {
                MediaValues::Img img;
                img.uri = in.readString();
                img.title = in.readString();
                img.width = in.readVarI32();
                img.height = in.readVarI32();
                img.size = in.readVarI32();
                v.images.push_back(std::move(img));
            }
        } else {
            panic("thrift-compact: bad top field");
        }
    }
    return v;
}

/// @}
/// @name cbor / smile: self-describing maps with string keys
/// @{

void
cborKey(ByteSink &out, const char *key)
{
    std::string_view k(key);
    out.writeU8(static_cast<std::uint8_t>(0x60 | k.size()));
    out.write(k.data(), k.size());
}

void
cborStr(ByteSink &out, const std::string &s)
{
    out.writeU8(0x78);
    out.writeVarU64(s.size());
    out.write(s.data(), s.size());
}

void
cborInt(ByteSink &out, std::int64_t x)
{
    out.writeU8(0x3b);
    out.writeVarI64(x);
}

void
cborEncode(const MediaValues &v, ByteSink &out)
{
    auto kv_str = [&](const char *k, const std::string &s) {
        cborKey(out, k);
        cborStr(out, s);
    };
    auto kv_int = [&](const char *k, std::int64_t x) {
        cborKey(out, k);
        cborInt(out, x);
    };
    out.writeU8(0xbf); // map
    kv_str("uri", v.uri);
    kv_str("title", v.title);
    kv_int("width", v.width);
    kv_int("height", v.height);
    kv_str("format", v.format);
    kv_int("duration", v.duration);
    kv_int("size", v.size);
    kv_int("bitrate", v.bitrate);
    cborKey(out, "hasBitrate");
    out.writeU8(v.hasBitrate ? 0xf5 : 0xf4);
    cborKey(out, "persons");
    out.writeU8(0x9f); // array
    out.writeVarU64(v.persons.size());
    for (const auto &p : v.persons)
        cborStr(out, p);
    kv_int("player", v.player);
    kv_str("copyright", v.copyright);
    cborKey(out, "images");
    out.writeU8(0x9f);
    out.writeVarU64(v.images.size());
    for (const auto &img : v.images) {
        out.writeU8(0xbf);
        kv_str("uri", img.uri);
        kv_str("title", img.title);
        kv_int("width", img.width);
        kv_int("height", img.height);
        kv_int("size", img.size);
        out.writeU8(0xff); // end map
    }
    out.writeU8(0xff);
}

std::string
cborReadStr(ByteSource &in)
{
    std::uint8_t h = in.readU8();
    panicIf(h != 0x78, "cbor: expected string");
    std::size_t n = in.readVarU64();
    const std::uint8_t *p = in.view(n);
    return std::string(reinterpret_cast<const char *>(p), n);
}

std::int64_t
cborReadInt(ByteSource &in)
{
    std::uint8_t h = in.readU8();
    panicIf(h != 0x3b, "cbor: expected int");
    return in.readVarI64();
}

MediaValues
cborDecode(ByteSource &in)
{
    MediaValues v;
    panicIf(in.readU8() != 0xbf, "cbor: expected map");
    while (true) {
        // Peek: end?
        std::uint8_t h = in.readU8();
        if (h == 0xff)
            break;
        panicIf((h & 0xe0) != 0x60, "cbor: expected key");
        std::size_t n = h & 0x1f;
        const std::uint8_t *p = in.view(n);
        std::string key(reinterpret_cast<const char *>(p), n);
        if (key == "uri") v.uri = cborReadStr(in);
        else if (key == "title") v.title = cborReadStr(in);
        else if (key == "width") v.width = cborReadInt(in);
        else if (key == "height") v.height = cborReadInt(in);
        else if (key == "format") v.format = cborReadStr(in);
        else if (key == "duration") v.duration = cborReadInt(in);
        else if (key == "size") v.size = cborReadInt(in);
        else if (key == "bitrate") v.bitrate = cborReadInt(in);
        else if (key == "hasBitrate")
            v.hasBitrate = in.readU8() == 0xf5;
        else if (key == "persons") {
            panicIf(in.readU8() != 0x9f, "cbor: expected array");
            std::size_t cnt = in.readVarU64();
            for (std::size_t i = 0; i < cnt; ++i)
                v.persons.push_back(cborReadStr(in));
        } else if (key == "player") v.player = cborReadInt(in);
        else if (key == "copyright") v.copyright = cborReadStr(in);
        else if (key == "images") {
            panicIf(in.readU8() != 0x9f, "cbor: expected array");
            std::size_t cnt = in.readVarU64();
            for (std::size_t i = 0; i < cnt; ++i) {
                panicIf(in.readU8() != 0xbf, "cbor: expected map");
                MediaValues::Img img;
                while (true) {
                    std::uint8_t ih = in.readU8();
                    if (ih == 0xff)
                        break;
                    panicIf((ih & 0xe0) != 0x60, "cbor: img key");
                    std::size_t kn = ih & 0x1f;
                    const std::uint8_t *kp = in.view(kn);
                    std::string ikey(
                        reinterpret_cast<const char *>(kp), kn);
                    if (ikey == "uri") img.uri = cborReadStr(in);
                    else if (ikey == "title")
                        img.title = cborReadStr(in);
                    else if (ikey == "width")
                        img.width = cborReadInt(in);
                    else if (ikey == "height")
                        img.height = cborReadInt(in);
                    else if (ikey == "size")
                        img.size = cborReadInt(in);
                    else
                        panic("cbor: bad image key");
                }
                v.images.push_back(std::move(img));
            }
        } else {
            panic("cbor: bad key " + key);
        }
    }
    return v;
}

/** smile: cbor-like but keys become 1-byte back-references after
 *  their first occurrence in the record. */
class SmileKeyTable
{
  public:
    void
    writeKey(ByteSink &out, const char *key)
    {
        std::string k(key);
        auto it = index_.find(k);
        if (it != index_.end()) {
            out.writeU8(static_cast<std::uint8_t>(0xc0 | it->second));
            return;
        }
        std::uint8_t id = static_cast<std::uint8_t>(index_.size());
        index_.emplace(k, id);
        out.writeU8(static_cast<std::uint8_t>(k.size()));
        out.write(k.data(), k.size());
    }

  private:
    std::unordered_map<std::string, std::uint8_t> index_;
};

class SmileKeyReader
{
  public:
    std::string
    readKey(ByteSource &in)
    {
        std::uint8_t h = in.readU8();
        if (h == 0xff)
            return ""; // end marker
        if (h & 0xc0)
            return names_[h & 0x3f];
        std::size_t n = h;
        const std::uint8_t *p = in.view(n);
        std::string k(reinterpret_cast<const char *>(p), n);
        names_.push_back(k);
        return k;
    }

  private:
    std::vector<std::string> names_;
};

void
smileEncode(const MediaValues &v, ByteSink &out)
{
    SmileKeyTable keys;
    auto kv_str = [&](const char *k, const std::string &s) {
        keys.writeKey(out, k);
        out.writeString(s);
    };
    auto kv_int = [&](const char *k, std::int64_t x) {
        keys.writeKey(out, k);
        out.writeVarI64(x);
    };
    // Top-level: strings have a leading type via position — smile is
    // positional-typed per key here (the schema is fixed).
    kv_str("uri", v.uri);
    kv_str("title", v.title);
    kv_int("width", v.width);
    kv_int("height", v.height);
    kv_str("format", v.format);
    kv_int("duration", v.duration);
    kv_int("size", v.size);
    kv_int("bitrate", v.bitrate);
    kv_int("hasBitrate", v.hasBitrate ? 1 : 0);
    keys.writeKey(out, "persons");
    out.writeVarU64(v.persons.size());
    for (const auto &p : v.persons)
        out.writeString(p);
    kv_int("player", v.player);
    kv_str("copyright", v.copyright);
    keys.writeKey(out, "images");
    out.writeVarU64(v.images.size());
    for (const auto &img : v.images) {
        kv_str("uri", img.uri);
        kv_str("title", img.title);
        kv_int("width", img.width);
        kv_int("height", img.height);
        kv_int("size", img.size);
    }
    out.writeU8(0xff);
}

MediaValues
smileDecode(ByteSource &in)
{
    MediaValues v;
    SmileKeyReader keys;
    int images_seen = -1;
    while (true) {
        std::string key = keys.readKey(in);
        if (key.empty())
            break;
        if (key == "uri") {
            if (images_seen < 0)
                v.uri = in.readString();
            else
                v.images[images_seen].uri = in.readString();
        } else if (key == "title") {
            if (images_seen < 0)
                v.title = in.readString();
            else
                v.images[images_seen].title = in.readString();
        } else if (key == "width") {
            if (images_seen < 0)
                v.width = in.readVarI64();
            else
                v.images[images_seen].width = in.readVarI64();
        } else if (key == "height") {
            if (images_seen < 0)
                v.height = in.readVarI64();
            else
                v.images[images_seen].height = in.readVarI64();
        } else if (key == "format") {
            v.format = in.readString();
        } else if (key == "duration") {
            v.duration = in.readVarI64();
        } else if (key == "size") {
            if (images_seen < 0)
                v.size = in.readVarI64();
            else {
                v.images[images_seen].size = in.readVarI64();
                // size is the last image field: advance.
                if (images_seen + 1 <
                    static_cast<int>(v.images.size()))
                    ++images_seen;
            }
        } else if (key == "bitrate") {
            v.bitrate = in.readVarI64();
        } else if (key == "hasBitrate") {
            v.hasBitrate = in.readVarI64() != 0;
        } else if (key == "persons") {
            std::size_t n = in.readVarU64();
            for (std::size_t i = 0; i < n; ++i)
                v.persons.push_back(in.readString());
        } else if (key == "player") {
            v.player = in.readVarI64();
        } else if (key == "copyright") {
            v.copyright = in.readString();
        } else if (key == "images") {
            std::size_t n = in.readVarU64();
            v.images.resize(n);
            images_seen = n ? 0 : -1;
        } else {
            panic("smile: bad key " + key);
        }
    }
    return v;
}

/// @}
/// @name capnproto / fst / wobly / msgpack
/// @{

/** capnproto-style: fixed-width struct section, strings in a tail. */
void
capnpEncode(const MediaValues &v, ByteSink &out)
{
    out.writeU32(static_cast<std::uint32_t>(v.width));
    out.writeU32(static_cast<std::uint32_t>(v.height));
    out.writeU64(static_cast<std::uint64_t>(v.duration));
    out.writeU64(static_cast<std::uint64_t>(v.size));
    out.writeU32(static_cast<std::uint32_t>(v.bitrate));
    out.writeU8(v.hasBitrate ? 1 : 0);
    out.writeU32(static_cast<std::uint32_t>(v.player));
    out.writeU32(static_cast<std::uint32_t>(v.persons.size()));
    out.writeU32(static_cast<std::uint32_t>(v.images.size()));
    // Tail: strings with u32 lengths (word padding as capnp does).
    auto tail = [&](const std::string &s) {
        out.writeU32(static_cast<std::uint32_t>(s.size()));
        out.write(s.data(), s.size());
        static const char pad[8] = {0};
        std::size_t rem = s.size() % 8;
        if (rem)
            out.write(pad, 8 - rem);
    };
    tail(v.uri);
    tail(v.title);
    tail(v.format);
    tail(v.copyright);
    for (const auto &p : v.persons)
        tail(p);
    for (const auto &img : v.images) {
        out.writeU32(static_cast<std::uint32_t>(img.width));
        out.writeU32(static_cast<std::uint32_t>(img.height));
        out.writeU32(static_cast<std::uint32_t>(img.size));
        out.writeU32(0); // struct padding
        tail(img.uri);
        tail(img.title);
    }
}

MediaValues
capnpDecode(ByteSource &in)
{
    MediaValues v;
    v.width = static_cast<std::int32_t>(in.readU32());
    v.height = static_cast<std::int32_t>(in.readU32());
    v.duration = static_cast<std::int64_t>(in.readU64());
    v.size = static_cast<std::int64_t>(in.readU64());
    v.bitrate = static_cast<std::int32_t>(in.readU32());
    v.hasBitrate = in.readU8() != 0;
    v.player = static_cast<std::int32_t>(in.readU32());
    std::uint32_t np = in.readU32();
    std::uint32_t ni = in.readU32();
    auto tail = [&]() {
        std::uint32_t n = in.readU32();
        const std::uint8_t *p = in.view(n);
        std::string s(reinterpret_cast<const char *>(p), n);
        std::size_t rem = n % 8;
        if (rem)
            in.view(8 - rem);
        return s;
    };
    v.uri = tail();
    v.title = tail();
    v.format = tail();
    v.copyright = tail();
    for (std::uint32_t i = 0; i < np; ++i)
        v.persons.push_back(tail());
    for (std::uint32_t i = 0; i < ni; ++i) {
        MediaValues::Img img;
        img.width = static_cast<std::int32_t>(in.readU32());
        img.height = static_cast<std::int32_t>(in.readU32());
        img.size = static_cast<std::int32_t>(in.readU32());
        in.readU32();
        img.uri = tail();
        img.title = tail();
        v.images.push_back(std::move(img));
    }
    return v;
}

/** fst-flat: fixed-width positional, no padding. */
void
fstEncode(const MediaValues &v, ByteSink &out)
{
    out.writeString(v.uri);
    out.writeString(v.title);
    out.writeU32(static_cast<std::uint32_t>(v.width));
    out.writeU32(static_cast<std::uint32_t>(v.height));
    out.writeString(v.format);
    out.writeU64(static_cast<std::uint64_t>(v.duration));
    out.writeU64(static_cast<std::uint64_t>(v.size));
    out.writeU32(static_cast<std::uint32_t>(v.bitrate));
    out.writeU8(v.hasBitrate ? 1 : 0);
    out.writeU32(static_cast<std::uint32_t>(v.persons.size()));
    for (const auto &p : v.persons)
        out.writeString(p);
    out.writeU32(static_cast<std::uint32_t>(v.player));
    out.writeString(v.copyright);
    out.writeU32(static_cast<std::uint32_t>(v.images.size()));
    for (const auto &img : v.images) {
        out.writeString(img.uri);
        out.writeString(img.title);
        out.writeU32(static_cast<std::uint32_t>(img.width));
        out.writeU32(static_cast<std::uint32_t>(img.height));
        out.writeU32(static_cast<std::uint32_t>(img.size));
    }
}

MediaValues
fstDecode(ByteSource &in)
{
    MediaValues v;
    v.uri = in.readString();
    v.title = in.readString();
    v.width = static_cast<std::int32_t>(in.readU32());
    v.height = static_cast<std::int32_t>(in.readU32());
    v.format = in.readString();
    v.duration = static_cast<std::int64_t>(in.readU64());
    v.size = static_cast<std::int64_t>(in.readU64());
    v.bitrate = static_cast<std::int32_t>(in.readU32());
    v.hasBitrate = in.readU8() != 0;
    std::uint32_t np = in.readU32();
    for (std::uint32_t i = 0; i < np; ++i)
        v.persons.push_back(in.readString());
    v.player = static_cast<std::int32_t>(in.readU32());
    v.copyright = in.readString();
    std::uint32_t ni = in.readU32();
    for (std::uint32_t i = 0; i < ni; ++i) {
        MediaValues::Img img;
        img.uri = in.readString();
        img.title = in.readString();
        img.width = static_cast<std::int32_t>(in.readU32());
        img.height = static_cast<std::int32_t>(in.readU32());
        img.size = static_cast<std::int32_t>(in.readU32());
        v.images.push_back(std::move(img));
    }
    return v;
}

/** wobly: whole-record length prefix, positional varint body. */
void
woblyEncode(const MediaValues &v, ByteSink &out)
{
    VectorSink body;
    positionalEncode(v, body);
    out.writeU32(static_cast<std::uint32_t>(body.bytes().size()));
    out.write(body.bytes().data(), body.bytes().size());
}

MediaValues
woblyDecode(ByteSource &in)
{
    std::uint32_t len = in.readU32();
    ByteSource body(in.view(len), len);
    return positionalDecode(body);
}

/** msgpack: size-adaptive tagged values. */
void
mpInt(ByteSink &out, std::int64_t x)
{
    if (x >= 0 && x < 128) {
        out.writeU8(static_cast<std::uint8_t>(x));
    } else if (x >= 0 && x <= 0xffff) {
        out.writeU8(0xcd);
        out.writeU16(static_cast<std::uint16_t>(x));
    } else if (x >= 0 && x <= 0xffffffffll) {
        out.writeU8(0xce);
        out.writeU32(static_cast<std::uint32_t>(x));
    } else {
        out.writeU8(0xcf);
        out.writeU64(static_cast<std::uint64_t>(x));
    }
}

std::int64_t
mpReadInt(ByteSource &in)
{
    std::uint8_t h = in.readU8();
    if (h < 128)
        return h;
    switch (h) {
      case 0xcd: return in.readU16();
      case 0xce: return in.readU32();
      case 0xcf: return static_cast<std::int64_t>(in.readU64());
      default: panic("msgpack: bad int tag");
    }
}

void
mpStr(ByteSink &out, const std::string &s)
{
    if (s.size() < 256) {
        out.writeU8(0xd9);
        out.writeU8(static_cast<std::uint8_t>(s.size()));
    } else {
        out.writeU8(0xda);
        out.writeU16(static_cast<std::uint16_t>(s.size()));
    }
    out.write(s.data(), s.size());
}

std::string
mpReadStr(ByteSource &in)
{
    std::uint8_t h = in.readU8();
    std::size_t n;
    if (h == 0xd9)
        n = in.readU8();
    else if (h == 0xda)
        n = in.readU16();
    else
        panic("msgpack: bad str tag");
    const std::uint8_t *p = in.view(n);
    return std::string(reinterpret_cast<const char *>(p), n);
}

void
msgpackEncode(const MediaValues &v, ByteSink &out)
{
    mpStr(out, v.uri);
    mpStr(out, v.title);
    mpInt(out, v.width);
    mpInt(out, v.height);
    mpStr(out, v.format);
    mpInt(out, v.duration);
    mpInt(out, v.size);
    mpInt(out, v.bitrate);
    out.writeU8(v.hasBitrate ? 0xc3 : 0xc2);
    mpInt(out, static_cast<std::int64_t>(v.persons.size()));
    for (const auto &p : v.persons)
        mpStr(out, p);
    mpInt(out, v.player);
    mpStr(out, v.copyright);
    mpInt(out, static_cast<std::int64_t>(v.images.size()));
    for (const auto &img : v.images) {
        mpStr(out, img.uri);
        mpStr(out, img.title);
        mpInt(out, img.width);
        mpInt(out, img.height);
        mpInt(out, img.size);
    }
}

MediaValues
msgpackDecode(ByteSource &in)
{
    MediaValues v;
    v.uri = mpReadStr(in);
    v.title = mpReadStr(in);
    v.width = mpReadInt(in);
    v.height = mpReadInt(in);
    v.format = mpReadStr(in);
    v.duration = mpReadInt(in);
    v.size = mpReadInt(in);
    v.bitrate = mpReadInt(in);
    v.hasBitrate = in.readU8() == 0xc3;
    std::int64_t np = mpReadInt(in);
    for (std::int64_t i = 0; i < np; ++i)
        v.persons.push_back(mpReadStr(in));
    v.player = mpReadInt(in);
    v.copyright = mpReadStr(in);
    std::int64_t ni = mpReadInt(in);
    for (std::int64_t i = 0; i < ni; ++i) {
        MediaValues::Img img;
        img.uri = mpReadStr(in);
        img.title = mpReadStr(in);
        img.width = mpReadInt(in);
        img.height = mpReadInt(in);
        img.size = mpReadInt(in);
        v.images.push_back(std::move(img));
    }
    return v;
}

/// @}

} // namespace

std::vector<JsbsCodec>
jsbsCodecs()
{
    std::vector<JsbsCodec> all;
    all.push_back({"colfer", colferEncode, colferDecode, false});
    all.push_back(
        {"protostuff", protostuffEncode, protostuffDecode, false});
    all.push_back({"protostuff-manual", protostuffEncode,
                   protostuffDecode, false});
    all.push_back({"protobuf", protobufEncode, protobufDecode, false});
    all.push_back({"protostuff-runtime", protostuffEncode,
                   protostuffDecode, true});
    all.push_back(
        {"datakernel", positionalEncode, positionalDecode, false});
    all.push_back({"avro-specific", avroEncode, avroDecode, false});
    all.push_back({"avro-generic", avroEncode, avroDecode, true});
    all.push_back({"thrift", thriftEncode, thriftDecode, false});
    all.push_back({"thrift-compact", thriftCompactEncode,
                   thriftCompactDecode, false});
    all.push_back({"cbor/jackson/manual", cborEncode, cborDecode,
                   false});
    all.push_back({"cbor/jackson/databind", cborEncode, cborDecode,
                   true});
    all.push_back({"smile/jackson/manual", smileEncode, smileDecode,
                   false});
    all.push_back({"smile/jackson/databind", smileEncode, smileDecode,
                   true});
    all.push_back({"capnproto", capnpEncode, capnpDecode, false});
    all.push_back({"fst-flat", fstEncode, fstDecode, false});
    all.push_back({"wobly", woblyEncode, woblyDecode, false});
    all.push_back({"msgpack", msgpackEncode, msgpackDecode, false});
    return all;
}

JsbsCodec
jsbsCodec(const std::string &name)
{
    for (auto &c : jsbsCodecs()) {
        if (c.name == name)
            return c;
    }
    fatal("jsbsCodec: unknown codec " + name);
}

} // namespace skyway
