/**
 * @file
 * Fundamental type aliases shared across the Skyway runtime.
 */

#ifndef SKYWAY_SUPPORT_TYPES_HH
#define SKYWAY_SUPPORT_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace skyway
{

/**
 * A managed-heap reference. In HotSpot this would be an `oop`; here it is
 * the byte address of an object header inside a node's heap arena. The
 * value 0 plays the role of Java's `null`.
 */
using Address = std::uintptr_t;

/** The null reference. */
constexpr Address nullAddr = 0;

/** A 64-bit heap word, the unit of object headers and reference slots. */
using Word = std::uint64_t;

/** Size of a heap word in bytes. All objects are word-aligned. */
constexpr std::size_t wordSize = sizeof(Word);

/** Round @p n up to the next multiple of @p align (a power of two). */
constexpr std::size_t
alignUp(std::size_t n, std::size_t align)
{
    return (n + align - 1) & ~(align - 1);
}

/** Round @p n up to the next heap-word boundary. */
constexpr std::size_t
wordAlign(std::size_t n)
{
    return alignUp(n, wordSize);
}

} // namespace skyway

#endif // SKYWAY_SUPPORT_TYPES_HH
