# Empty dependencies file for bench_ablation_rehash.
# This may be replaced when dependencies are built.
