# Empty dependencies file for flink_query.
# This may be replaced when dependencies are built.
