#include "miniflink/miniflink.hh"

#include <optional>

namespace skyway
{

FlinkCluster::FlinkCluster(const ClassCatalog &catalog,
                           FlinkSerMode mode, FlinkConfig config)
    : config_(config),
      mode_(mode),
      net_(std::make_unique<ClusterNetwork>(config.numWorkers + 1,
                                            config.network,
                                            config.transport)),
      breakdowns_(config.numWorkers)
{
    nodes_.push_back(
        std::make_unique<Jvm>(catalog, *net_, 0, 0, HeapConfig{}));
    for (int w = 0; w < config.numWorkers; ++w) {
        nodes_.push_back(std::make_unique<Jvm>(
            catalog, *net_, w + 1, 0, config.workerHeap));
        nodes_.back()->disk() = SimDisk(config.disk);
    }
    for (int w = 0; w < config.numWorkers; ++w)
        skywaySer_.push_back(
            std::make_unique<SkywaySerializer>(worker(w).skyway()));
}

PhaseBreakdown
FlinkCluster::averageBreakdown() const
{
    PhaseBreakdown total;
    for (const auto &b : breakdowns_)
        total += b;
    int n = config_.numWorkers;
    return PhaseBreakdown{total.computeNs / n, total.serNs / n,
                          total.writeIoNs / n, total.deserNs / n,
                          total.readIoNs / n, total.bytesLocal,
                          total.bytesRemote};
}

PhaseBreakdown
FlinkCluster::totalBreakdown() const
{
    PhaseBreakdown total;
    for (const auto &b : breakdowns_)
        total += b;
    return total;
}

void
FlinkCluster::resetBreakdowns()
{
    for (auto &b : breakdowns_)
        b = PhaseBreakdown{};
}

FlinkRowSerializer::FlinkRowSerializer(
    KlassTable &klasses, const std::string &row_class,
    const std::vector<std::string> &needed)
    : klass_(klasses.load(row_class))
{
    const auto &fields = klass_->fields();
    neededMask_.assign(fields.size(), needed.empty());
    for (const std::string &name : needed) {
        bool found = false;
        for (std::size_t i = 0; i < fields.size(); ++i) {
            if (fields[i].name == name) {
                neededMask_[i] = true;
                found = true;
            }
        }
        panicIf(!found, "FlinkRowSerializer: no field " + name +
                            " in " + row_class);
    }
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (neededMask_[i]) {
            lastNeeded_ = i;
            if (fields[i].type == FieldType::Ref)
                materializesRefs_ = true;
        }
    }
}

void
FlinkRowSerializer::write(Jvm &jvm, Address row, ByteSink &out) const
{
    ManagedHeap &h = jvm.heap();
    panicIf(h.klassOf(row)->name() != klass_->name(),
            "FlinkRowSerializer: wrong row class on channel");
    // Flink's RecordWriter first serializes the record into an
    // intermediate DataOutputSerializer, then copies it — with a
    // length frame — into the outgoing network buffer. The reader
    // parses non-spanning records in place, with no second copy:
    // one of the reasons Flink's deserialization is cheaper than its
    // serialization even before lazy field skipping.
    tmp_.clear();
    ByteSink &body = tmp_;
    for (const FieldDesc &f : klass_->fields()) {
        switch (f.type) {
          case FieldType::Boolean:
          case FieldType::Byte:
            body.writeU8(h.load<std::uint8_t>(row, f.offset));
            break;
          case FieldType::Char:
          case FieldType::Short:
            body.writeU16(h.load<std::uint16_t>(row, f.offset));
            break;
          case FieldType::Int:
          case FieldType::Float:
            body.writeU32(h.load<std::uint32_t>(row, f.offset));
            break;
          case FieldType::Long:
          case FieldType::Double:
            body.writeU64(h.load<std::uint64_t>(row, f.offset));
            break;
          case FieldType::Ref: {
            // Schema constraint: reference fields are strings.
            Address s = h.loadRef(row, f.offset);
            if (s == nullAddr) {
                body.writeVarU64(0);
            } else {
                ObjectBuilder builder(h, jvm.klasses());
                std::string v = builder.stringValue(s);
                body.writeVarU64(v.size() + 1);
                body.write(v.data(), v.size());
            }
            break;
          }
        }
    }
    out.writeU32(static_cast<std::uint32_t>(tmp_.bytes().size()));
    out.write(tmp_.bytes().data(), tmp_.bytes().size());
}

Address
FlinkRowSerializer::read(Jvm &jvm, ByteSource &in) const
{
    ManagedHeap &h = jvm.heap();
    // Root the row only when a needed reference field will allocate
    // mid-read; pure-primitive reads cannot trigger a collection.
    std::optional<LocalRoots> roots;
    std::size_t rrow = 0;
    Address row_raw = h.allocateInstance(klass_);
    if (materializesRefs_) {
        roots.emplace(h);
        rrow = roots->push(row_raw);
    }
    auto row = [&] {
        return materializesRefs_ ? roots->get(rrow) : row_raw;
    };

    std::uint32_t frame = in.readU32(); // record length (no spanning)
    std::size_t body_start = in.position();
    const auto &fields = klass_->fields();
    for (std::size_t i = 0; i <= lastNeeded_; ++i) {
        const FieldDesc &f = fields[i];
        bool need = neededMask_[i];
        switch (f.type) {
          case FieldType::Boolean:
          case FieldType::Byte: {
            std::uint8_t v = in.readU8();
            if (need)
                h.store<std::uint8_t>(row(), f.offset, v);
            break;
          }
          case FieldType::Char:
          case FieldType::Short: {
            std::uint16_t v = in.readU16();
            if (need)
                h.store<std::uint16_t>(row(), f.offset, v);
            break;
          }
          case FieldType::Int:
          case FieldType::Float: {
            std::uint32_t v = in.readU32();
            if (need)
                h.store<std::uint32_t>(row(), f.offset, v);
            break;
          }
          case FieldType::Long:
          case FieldType::Double: {
            std::uint64_t v = in.readU64();
            if (need)
                h.store<std::uint64_t>(row(), f.offset, v);
            break;
          }
          case FieldType::Ref: {
            std::size_t marker = in.readVarU64();
            if (marker == 0)
                break;
            std::size_t len = marker - 1;
            if (need) {
                // Materialize the string object.
                const std::uint8_t *p = in.view(len);
                ObjectBuilder builder(h, jvm.klasses());
                Address s = builder.makeString(std::string_view(
                    reinterpret_cast<const char *>(p), len));
                h.storeRef(row(), f.offset, s);
            } else {
                // Lazy: skip the bytes, never create the object.
                in.view(len);
            }
            break;
          }
        }
    }
    // Fields past the last needed one are never parsed: jump to the
    // record end through the length frame.
    in.view(frame - (in.position() - body_start));
    return row();
}

FlinkShuffle::FlinkShuffle(FlinkCluster &cluster, std::string name,
                           std::string row_class,
                           std::vector<std::string> needed)
    : cluster_(cluster),
      name_(std::move(name)),
      rowClass_(std::move(row_class))
{
    int n = cluster.numWorkers();
    buckets_.resize(n);
    counts_.assign(n, std::vector<std::uint64_t>(n, 0));
    for (int w = 0; w < n; ++w) {
        srcRoots_.push_back(
            std::make_unique<LocalRoots>(cluster.worker(w).heap()));
        buckets_[w].resize(n);
        rowSer_.push_back(std::make_unique<FlinkRowSerializer>(
            cluster.worker(w).klasses(), rowClass_, needed));
        if (cluster.mode() == FlinkSerMode::Skyway) {
            cluster.skywaySerializer(w).startPhase();
            cluster.skywaySerializer(w).releaseReceived();
        }
    }
}

std::string
FlinkShuffle::fileName(int src, int dst) const
{
    return name_ + ".s" + std::to_string(src) + ".d" +
           std::to_string(dst) + ".flink";
}

void
FlinkShuffle::add(int src, int dst, Address row)
{
    panicIf(written_, "FlinkShuffle: add after writePhase");
    std::size_t slot = srcRoots_[src]->push(row);
    buckets_[src][dst].push_back(slot);
    ++counts_[src][dst];
    ++recordsAdded_;
}

void
FlinkShuffle::writePhase()
{
    panicIf(written_, "FlinkShuffle: writePhase twice");
    written_ = true;
    int n = cluster_.numWorkers();
    bool use_skyway = cluster_.mode() == FlinkSerMode::Skyway;
    for (int src = 0; src < n; ++src) {
        Jvm &jvm = cluster_.worker(src);
        PhaseBreakdown &b = cluster_.breakdown(src);
        for (int dst = 0; dst < n; ++dst) {
            if (buckets_[src][dst].empty())
                continue;
            VectorSink sink;
            {
                ScopedTimer timer(b.serNs);
                if (use_skyway) {
                    SkywaySerializer &ser =
                        cluster_.skywaySerializer(src);
                    for (std::size_t slot : buckets_[src][dst])
                        ser.writeObject(srcRoots_[src]->get(slot),
                                        sink);
                    ser.endStream(sink);
                } else {
                    for (std::size_t slot : buckets_[src][dst])
                        rowSer_[src]->write(
                            jvm, srcRoots_[src]->get(slot), sink);
                }
            }
            bytesWritten_ += sink.bytesWritten();
            b.writeIoNs += jvm.disk().writeFile(fileName(src, dst),
                                                sink.takeBytes());
        }
        srcRoots_[src]->clear();
    }
}

std::unique_ptr<RecordBatch>
FlinkShuffle::read(int dst)
{
    panicIf(!written_, "FlinkShuffle: read before writePhase");
    int n = cluster_.numWorkers();
    Jvm &jvm = cluster_.worker(dst);
    PhaseBreakdown &b = cluster_.breakdown(dst);
    bool use_skyway = cluster_.mode() == FlinkSerMode::Skyway;
    // Skyway delivers into pinned buffers: no per-record roots.
    auto out = use_skyway
                   ? std::make_unique<RecordBatch>()
                   : std::make_unique<RecordBatch>(jvm.heap());

    for (int src = 0; src < n; ++src) {
        if (counts_[src][dst] == 0)
            continue;
        SimDisk &src_disk = cluster_.worker(src).disk();
        const auto &file = src_disk.file(fileName(src, dst));
        b.readIoNs += src_disk.chargeRead(file.size());
        std::vector<std::uint8_t> fetched;
        const std::vector<std::uint8_t> *bytes = &file;
        if (src != dst) {
            b.readIoNs +=
                cluster_.net().model().transferNs(file.size());
            b.bytesRemote += file.size();
            // The partition crosses the fabric for real (an actual
            // socket on the tcp transport).
            cluster_.net().send(src + 1, dst + 1, flinkmsg::shuffle,
                                file);
            NetMessage msg;
            while (!cluster_.net().pollTag(dst + 1, flinkmsg::shuffle,
                                           msg)) {
            }
            fetched = std::move(msg.payload);
            bytes = &fetched;
        } else {
            b.bytesLocal += file.size();
        }

        ByteSource in(*bytes);
        ScopedTimer timer(b.deserNs);
        if (use_skyway) {
            SkywaySerializer &des = cluster_.skywaySerializer(dst);
            for (std::uint64_t i = 0; i < counts_[src][dst]; ++i)
                out->push(des.readObject(in));
        } else {
            for (std::uint64_t i = 0; i < counts_[src][dst]; ++i)
                out->push(rowSer_[dst]->read(jvm, in));
        }
    }
    return out;
}

} // namespace skyway
