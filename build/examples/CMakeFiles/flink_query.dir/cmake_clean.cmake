file(REMOVE_RECURSE
  "CMakeFiles/flink_query.dir/flink_query.cpp.o"
  "CMakeFiles/flink_query.dir/flink_query.cpp.o.d"
  "flink_query"
  "flink_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flink_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
