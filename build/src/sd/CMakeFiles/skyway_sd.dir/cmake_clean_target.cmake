file(REMOVE_RECURSE
  "libskyway_sd.a"
)
