/**
 * @file
 * Error-reporting helpers in the gem5 tradition: panic() for internal
 * invariant violations, fatal() for user/configuration errors, warn() and
 * inform() for status messages that do not stop the run.
 */

#ifndef SKYWAY_SUPPORT_LOGGING_HH
#define SKYWAY_SUPPORT_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace skyway
{

/** Print a formatted message to stderr with a severity prefix. */
void logMessage(const char *severity, const std::string &msg);

/**
 * Abort the process: an internal invariant was violated. Use for
 * conditions that indicate a bug in the runtime itself, never for bad
 * input.
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Exit with an error: the run cannot continue because of a condition that
 * is the caller's fault (bad configuration, invalid arguments).
 */
[[noreturn]] void fatal(const std::string &msg);

/** Alert the user to suspicious but survivable conditions. */
void warn(const std::string &msg);

/** Provide normal operating status to the user. */
void inform(const std::string &msg);

/**
 * Assert an internal invariant; panics with @p msg when @p cond is false.
 * Unlike assert(3) this is active in all build types — the runtime
 * manipulates raw heap memory and silent corruption is worse than a halt.
 */
inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

} // namespace skyway

#endif // SKYWAY_SUPPORT_LOGGING_HH
