/**
 * @file
 * Tests for the parallel shuffle pipeline: ParallelSender fan-out
 * (N worker threads racing the baddr CAS/hash-fallback protocol on a
 * shared subgraph) and the receiver's zero-copy reserve/commit chunk
 * handoff (markers overwritten with fillers in place, run-based
 * relative-address translation, GC walkability of rebuilt chunks).
 * Labeled `concurrency` so the TSan matrix runs the whole binary.
 */

#include <cstring>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "skyway/parallel.hh"
#include "testclasses.hh"

namespace skyway
{
namespace
{

using testing_support::makeMixed;
using testing_support::makePoint;
using testing_support::makeTestCatalog;

class ParallelTest : public ::testing::Test
{
  protected:
    ParallelTest()
        : catalog_(makeTestCatalog()),
          net_(3),
          driver_(catalog_, net_, 0, 0),
          nodeA_(catalog_, net_, 1, 0),
          nodeB_(catalog_, net_, 2, 0)
    {}

    /**
     * N roots that all share one contended subtree: root t is a
     * test.Pair whose left points at the shared test.Mixed graph and
     * whose right is a private test.Point.
     */
    std::vector<std::size_t>
    makeSharedRoots(LocalRoots &roots, unsigned n)
    {
        Address shared = makeMixed(nodeA_, roots, "contended subtree");
        std::size_t rs = roots.push(shared);
        Klass *pairK = nodeA_.klasses().load("test.Pair");
        std::vector<std::size_t> tops;
        for (unsigned t = 0; t < n; ++t) {
            Address p = nodeA_.heap().allocateInstance(pairK);
            std::size_t rp = roots.push(p);
            field::setRef(nodeA_.heap(), roots.get(rp),
                          pairK->requireField("left"), roots.get(rs));
            Address priv = makePoint(nodeA_, static_cast<int>(t), -1);
            field::setRef(nodeA_.heap(), roots.get(rp),
                          pairK->requireField("right"), priv);
            tops.push_back(rp);
        }
        return tops;
    }

    /** Ingest captured segments through the zero-copy API. */
    std::unique_ptr<InputBuffer>
    receiveZeroCopy(const std::vector<std::vector<std::uint8_t>> &segs,
                    std::size_t chunk_bytes = defaultInputChunkBytes)
    {
        auto buf = std::make_unique<InputBuffer>(nodeB_.skyway(),
                                                 chunk_bytes);
        for (const auto &seg : segs) {
            std::uint8_t *dst = buf->reserveChunk(seg.size());
            std::memcpy(dst, seg.data(), seg.size());
            buf->commitChunk(seg.size());
        }
        buf->finalize();
        return buf;
    }

    ClassCatalog catalog_;
    ClusterNetwork net_;
    Jvm driver_;
    Jvm nodeA_;
    Jvm nodeB_;
    std::vector<std::unique_ptr<InputBuffer>> keep_;
};

TEST_F(ParallelTest, FanOutSharedSubgraphExactlyOncePerStream)
{
    // Four workers race on one shared subtree; every stream must
    // carry a complete copy of its root's graph (losers of the baddr
    // CAS duplicate the shared objects via their hash fallback), and
    // every receiver must rebuild it bit-identically under the full
    // SkywaySan graph audit. The per-stream byte equality below is a
    // raw-format invariant: pin compaction off (test_wirecompact.cc
    // covers the fan-out under force).
    nodeA_.skyway().setWireCompactMode(WireCompactMode::Off);
    nodeB_.skyway().setWireCompactMode(WireCompactMode::Off);
    constexpr unsigned N = 4;
    nodeB_.skyway().debug().validateWire = true;
    nodeB_.skyway().debug().checkReceivedGraph = true;

    LocalRoots roots(nodeA_.heap());
    std::vector<std::size_t> tops = makeSharedRoots(roots, N);

    nodeA_.skyway().shuffleStart();
    std::vector<std::vector<std::vector<std::uint8_t>>> segs(N);
    ParallelSendConfig cfg;
    cfg.threads = N;
    ParallelSender psend(
        nodeA_.skyway(),
        [&segs](unsigned w) {
            auto *mine = &segs[w];
            return [mine](const std::uint8_t *d, std::size_t n) {
                mine->emplace_back(d, d + n);
            };
        },
        cfg);

    std::vector<Address> rootAddrs;
    for (std::size_t s : tops)
        rootAddrs.push_back(roots.get(s));
    ParallelSendReport rep = psend.send(rootAddrs);

    // The shared subtree root has one CAS winner; the other N-1
    // streams went through their local hash tables.
    EXPECT_GE(rep.total.hashFallbacks, N - 1);
    EXPECT_EQ(rep.perWorker.size(), N);

    std::uint64_t receivedObjects = 0;
    for (unsigned w = 0; w < N; ++w) {
        // Exactly-once placement per stream: the stream's record
        // count equals its root graph's object count — shared objects
        // are duplicated across streams but never within one.
        GraphMeasure gm =
            measureGraph(nodeA_.heap(), rootAddrs[w % N]);
        EXPECT_EQ(rep.perWorker[w].objectsCopied, gm.objects)
            << "stream " << w;

        std::unique_ptr<InputBuffer> buf = receiveZeroCopy(segs[w]);
        EXPECT_EQ(buf->stats().zeroCopyBytes,
                  psend.stream(w).totalBytes())
            << "stream " << w;
        receivedObjects += buf->stats().objectsReceived;
        ASSERT_EQ(buf->roots().size(), 1u);
        EXPECT_TRUE(graphsEqual(nodeA_.heap(), rootAddrs[w],
                                nodeB_.heap(), buf->roots().at(0)))
            << "stream " << w;
        keep_.push_back(std::move(buf));
    }
    EXPECT_EQ(receivedObjects, rep.total.objectsCopied);
}

TEST_F(ParallelTest, ContendedFanOutExercisesClaimProtocol)
{
    // Many roots per worker, all funneling into the same subtree:
    // the claim protocol must show activity (CAS retries and/or hash
    // fallbacks) and still deliver correct graphs.
    constexpr unsigned N = 4;
    LocalRoots roots(nodeA_.heap());
    Address shared = makeMixed(nodeA_, roots, "hot subtree");
    std::size_t rs = roots.push(shared);
    Klass *pairK = nodeA_.klasses().load("test.Pair");
    std::vector<std::size_t> tops;
    for (unsigned i = 0; i < 64; ++i) {
        Address p = nodeA_.heap().allocateInstance(pairK);
        std::size_t rp = roots.push(p);
        field::setRef(nodeA_.heap(), roots.get(rp),
                      pairK->requireField("left"), roots.get(rs));
        tops.push_back(rp);
    }

    nodeA_.skyway().shuffleStart();
    std::vector<std::vector<std::vector<std::uint8_t>>> segs(N);
    ParallelSendConfig cfg;
    cfg.threads = N;
    ParallelSender psend(
        nodeA_.skyway(),
        [&segs](unsigned w) {
            auto *mine = &segs[w];
            return [mine](const std::uint8_t *d, std::size_t n) {
                mine->emplace_back(d, d + n);
            };
        },
        cfg);

    std::vector<Address> rootAddrs;
    for (std::size_t s : tops)
        rootAddrs.push_back(roots.get(s));
    ParallelSendReport rep = psend.send(rootAddrs);

    EXPECT_GT(rep.total.casRetries + rep.total.hashFallbacks, 0u);
    EXPECT_GE(rep.total.hashFallbacks, N - 1);

    for (unsigned w = 0; w < N; ++w) {
        std::unique_ptr<InputBuffer> buf = receiveZeroCopy(segs[w]);
        // Worker w owned roots w, w+N, w+2N, ... in that order.
        std::size_t r = 0;
        for (std::size_t i = w; i < rootAddrs.size(); i += N, ++r)
            EXPECT_TRUE(graphsEqual(nodeA_.heap(), rootAddrs[i],
                                    nodeB_.heap(),
                                    buf->roots().at(r)))
                << "stream " << w << " root " << r;
        EXPECT_EQ(buf->roots().size(), r);
        keep_.push_back(std::move(buf));
    }
}

TEST_F(ParallelTest, ZeroCopyAndFeedRebuildIdentically)
{
    // The same wire bytes through the compat copy path and the
    // zero-copy path must yield structurally identical graphs; only
    // the zero-copy buffer counts zero_copy_bytes. zero_copy_bytes ==
    // wire bytes is a raw-format invariant: pin compaction off.
    nodeA_.skyway().setWireCompactMode(WireCompactMode::Off);
    nodeB_.skyway().setWireCompactMode(WireCompactMode::Off);
    LocalRoots roots(nodeA_.heap());
    std::size_t rm =
        roots.push(makeMixed(nodeA_, roots, "dual path"));
    std::size_t rl =
        roots.push(testing_support::makeList(nodeA_, roots, 100));
    nodeA_.skyway().shuffleStart();

    std::vector<std::vector<std::uint8_t>> segs;
    std::uint64_t wireBytes = 0;
    Address m = roots.get(rm);
    {
        SkywayObjectOutputStream out(
            nodeA_.skyway(),
            [&](const std::uint8_t *d, std::size_t n) {
                segs.emplace_back(d, d + n);
                wireBytes += n;
            },
            1 << 10); // tiny buffer: many segments
        out.writeObject(m);
        out.writeObject(roots.get(rl));
        out.flush();
    }
    ASSERT_GT(segs.size(), 1u);

    InputBuffer fed(nodeB_.skyway());
    for (const auto &seg : segs)
        fed.feed(seg.data(), seg.size());
    fed.finalize();
    std::unique_ptr<InputBuffer> zc = receiveZeroCopy(segs);

    EXPECT_EQ(fed.stats().zeroCopyBytes, 0u);
    EXPECT_EQ(zc->stats().zeroCopyBytes, wireBytes);
    EXPECT_EQ(fed.stats().objectsReceived, zc->stats().objectsReceived);
    EXPECT_EQ(fed.stats().bytesReceived, zc->stats().bytesReceived);
    EXPECT_TRUE(graphsEqual(nodeB_.heap(), fed.roots().at(0),
                            nodeB_.heap(), zc->roots().at(0)));
    EXPECT_TRUE(graphsEqual(nodeA_.heap(), m, nodeB_.heap(),
                            zc->roots().at(0)));
    keep_.push_back(std::move(zc));
}

TEST_F(ParallelTest, ZeroCopyChunksSurviveGc)
{
    // Markers overwritten with fillers must leave the finalized
    // chunks walkable: a full GC on the receiver walks the pinned
    // ranges object by object and must not trip over the holes.
    LocalRoots roots(nodeA_.heap());
    Address m = makeMixed(nodeA_, roots, "gc survivor");
    nodeA_.skyway().shuffleStart();

    std::vector<std::vector<std::uint8_t>> segs;
    {
        SkywayObjectOutputStream out(
            nodeA_.skyway(),
            [&](const std::uint8_t *d, std::size_t n) {
                segs.emplace_back(d, d + n);
            },
            2 << 10);
        // Two top-level writes: extra top marks + a backward
        // reference in the stream, all becoming fillers.
        out.writeObject(m);
        out.writeObject(m);
        out.flush();
    }
    std::unique_ptr<InputBuffer> buf =
        receiveZeroCopy(segs, 4 << 10);
    ASSERT_EQ(buf->roots().size(), 2u);
    EXPECT_EQ(buf->roots().at(0), buf->roots().at(1));

    nodeB_.gc().fullGc();
    nodeB_.gc().fullGc();
    EXPECT_TRUE(graphsEqual(nodeA_.heap(), m, nodeB_.heap(),
                            buf->roots().at(0)));
    keep_.push_back(std::move(buf));
}

TEST_F(ParallelTest, SocketPumpIsZeroCopy)
{
    // The socket stream pair must move every payload byte through the
    // reserve/commit handoff — zero_copy_bytes equals the bytes the
    // sender flushed onto the fabric. That equality only holds for
    // the raw format (compact segments are staged and re-expanded):
    // pin compaction off.
    nodeA_.skyway().setWireCompactMode(WireCompactMode::Off);
    nodeB_.skyway().setWireCompactMode(WireCompactMode::Off);
    LocalRoots roots(nodeA_.heap());
    Address m = makeMixed(nodeA_, roots, "socket path");
    nodeA_.skyway().shuffleStart();

    SkywaySocketOutputStream out(nodeA_.skyway(), net_, 1, 2, 4242,
                                 4 << 10);
    out.writeObject(m);
    out.close();
    std::uint64_t payload = out.totalBytes();

    SkywaySocketInputStream in(nodeB_.skyway(), net_, 2, 4242);
    while (!in.pump()) {}
    EXPECT_EQ(in.buffer().stats().zeroCopyBytes, payload);
    EXPECT_GT(payload, 0u);
    EXPECT_TRUE(graphsEqual(nodeA_.heap(), m, nodeB_.heap(),
                            in.readObject()));
    keep_.push_back(in.releaseBuffer());
}

TEST_F(ParallelTest, OversizedSegmentGetsOversizedChunk)
{
    // A record bigger than the input chunk size arrives through the
    // zero-copy path in one oversized chunk.
    LocalRoots roots(nodeA_.heap());
    Address big = nodeA_.builder().makeLongArray(
        std::vector<std::int64_t>(4096, 7));
    std::size_t slot = roots.push(big);

    nodeA_.skyway().shuffleStart();
    SkywaySocketOutputStream out(nodeA_.skyway(), net_, 1, 2, 4243);
    out.writeObject(roots.get(slot));
    out.close();

    SkywaySocketInputStream in(nodeB_.skyway(), net_, 2, 4243,
                               1 << 10);
    while (!in.pump()) {}
    EXPECT_GE(in.buffer().stats().oversizedChunks, 1u);
    EXPECT_TRUE(graphsEqual(nodeA_.heap(), roots.get(slot),
                            nodeB_.heap(), in.readObject()));
    keep_.push_back(in.releaseBuffer());
}

TEST_F(ParallelTest, SingleWorkerMatchesPlainStream)
{
    // threads=1 runs inline on the caller and must behave exactly
    // like one SkywayObjectOutputStream.
    LocalRoots roots(nodeA_.heap());
    Address m = makeMixed(nodeA_, roots, "inline worker");
    nodeA_.skyway().shuffleStart();

    std::vector<std::vector<std::uint8_t>> segs;
    ParallelSender psend(nodeA_.skyway(), [&segs](unsigned) {
        return [&segs](const std::uint8_t *d, std::size_t n) {
            segs.emplace_back(d, d + n);
        };
    });
    ParallelSendReport rep = psend.send({m});
    EXPECT_EQ(rep.total.hashFallbacks, 0u);
    EXPECT_EQ(rep.total.casRetries, 0u);
    EXPECT_EQ(rep.total.objectsCopied,
              measureGraph(nodeA_.heap(), m).objects);

    std::unique_ptr<InputBuffer> buf = receiveZeroCopy(segs);
    EXPECT_TRUE(graphsEqual(nodeA_.heap(), m, nodeB_.heap(),
                            buf->roots().at(0)));
    keep_.push_back(std::move(buf));
}

} // namespace
} // namespace skyway
