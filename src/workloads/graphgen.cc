#include "workloads/graphgen.hh"

#include <algorithm>

#include "support/logging.hh"

namespace skyway
{

GraphSpec
liveJournalShaped(double scale)
{
    return GraphSpec{"LJ",
                     static_cast<std::uint32_t>(24000 * scale),
                     static_cast<std::uint64_t>(345000 * scale),
                     2.1, 4801, "Social network (LiveJournal-shaped)"};
}

GraphSpec
orkutShaped(double scale)
{
    return GraphSpec{"OR",
                     static_cast<std::uint32_t>(15000 * scale),
                     static_cast<std::uint64_t>(585000 * scale),
                     2.0, 4802, "Social network (Orkut-shaped)"};
}

GraphSpec
uk2005Shaped(double scale)
{
    return GraphSpec{"UK",
                     static_cast<std::uint32_t>(98000 * scale),
                     static_cast<std::uint64_t>(2340000 * scale),
                     2.3, 4803, "Web graph (UK-2005-shaped)"};
}

GraphSpec
twitter2010Shaped(double scale)
{
    return GraphSpec{"TW",
                     static_cast<std::uint32_t>(104000 * scale),
                     static_cast<std::uint64_t>(3750000 * scale),
                     1.9, 4804, "Social network (Twitter-2010-shaped)"};
}

std::vector<GraphSpec>
table1Graphs(double scale)
{
    return {liveJournalShaped(scale), orkutShaped(scale),
            uk2005Shaped(scale), twitter2010Shaped(scale)};
}

EdgeList
generateGraph(const GraphSpec &spec)
{
    panicIf(spec.vertices < 2, "generateGraph: too few vertices");
    EdgeList out;
    out.numVertices = spec.vertices;
    out.edges.reserve(spec.edges);
    Rng rng(spec.seed);
    while (out.edges.size() < spec.edges) {
        auto u = static_cast<std::uint32_t>(
            rng.nextPowerLaw(spec.vertices, spec.alpha, spec.shift));
        auto v = static_cast<std::uint32_t>(
            rng.nextPowerLaw(spec.vertices, spec.alpha, spec.shift));
        // Scatter one endpoint uniformly so the graph is not a clique
        // among hubs; keeps a heavy-tailed degree distribution while
        // spreading the edge set over all vertices.
        if (rng.nextBounded(2) == 0)
            v = static_cast<std::uint32_t>(
                rng.nextBounded(spec.vertices));
        if (u == v)
            continue;
        out.edges.emplace_back(u, v);
    }
    return out;
}

std::vector<std::vector<std::uint32_t>>
buildAdjacency(const EdgeList &graph)
{
    std::vector<std::vector<std::uint32_t>> adj(graph.numVertices);
    for (auto [u, v] : graph.edges) {
        adj[u].push_back(v);
        adj[v].push_back(u);
    }
    // Sort and deduplicate each neighbour list: workloads (notably
    // TriangleCounting) rely on set semantics.
    for (auto &list : adj) {
        std::sort(list.begin(), list.end());
        list.erase(std::unique(list.begin(), list.end()), list.end());
    }
    return adj;
}

} // namespace skyway
