/**
 * @file
 * Table 1 of the paper: the graph inputs. Prints the synthetic
 * stand-ins' generated statistics (vertices, edges, max degree) next
 * to the original datasets' published sizes, making the scale-down
 * factors explicit.
 */

#include "bench/benchutil.hh"
#include "workloads/graphgen.hh"

using namespace skyway;

int
main(int argc, char **argv)
{
    double scale = bench::parseScale(argc, argv, 1.0);
    bench::JsonReport report(argc, argv, "bench_table1_graphs", scale);

    bench::printHeader("Table 1: graph inputs (synthetic stand-ins)");
    std::printf("%-6s %12s %12s %10s %10s  %s\n", "graph", "vertices",
                "edges", "maxdeg", "paperE", "description");

    const std::uint64_t paper_edges[4] = {69'000'000, 117'000'000,
                                          936'000'000, 1'500'000'000};
    int i = 0;
    for (const GraphSpec &spec : table1Graphs(scale)) {
        auto row = report.row(spec.name);
        EdgeList g = generateGraph(spec);
        auto adj = buildAdjacency(g);
        std::size_t maxdeg = 0;
        for (const auto &list : adj)
            maxdeg = std::max(maxdeg, list.size());
        std::printf("%-6s %12u %12zu %10zu %9luM  %s\n",
                    spec.name.c_str(), g.numVertices, g.edges.size(),
                    maxdeg, paper_edges[i] / 1'000'000,
                    spec.description.c_str());
        row.value("vertices", g.numVertices);
        row.value("edges", static_cast<double>(g.edges.size()));
        row.value("max_degree", static_cast<double>(maxdeg));
        ++i;
    }
    std::printf("\n(scale factor %.3f; originals are 69M-1.5B edges;\n"
                " the evaluation depends on the LJ < OR < UK < TW "
                "ordering and degree skew, both preserved)\n",
                scale);
    return 0;
}
